"""Text domain: length-preserving strings as uint8 code arrays.

Strings enter the engines once, as arrays of *alphabet codes* (the same
indices the :class:`~repro.hdc.encoders.ngram.NgramEncoder` codebook
uses), and leave once, decoded back to strings on a successful flip.
In between, mutation, clipping, the character-Hamming budget, the
dedupe-cache keys, and the incremental n-gram encoder all vectorize
over ``(n, L)`` uint8 blocks exactly like pixels do — which is what
lets the lock-step batched engine run text campaigns at full speed.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.constraints import Constraint, TextConstraint
from repro.fuzz.domains.base import FuzzDomain, register_domain
from repro.hdc.encoders.ngram import DEFAULT_ALPHABET

__all__ = ["TextDomain"]


@register_domain
class TextDomain(FuzzDomain):
    """Equal-length strings over a fixed alphabet.

    Parameters
    ----------
    alphabet:
        Permitted characters; internal codes are indices into it, so it
        must match the model encoder's alphabet (``for_model`` reads it
        off the encoder automatically).
    unknown_policy:
        What to do with out-of-alphabet characters in raw inputs:
        ``"raise"`` (default) or ``"map"`` (replace with the last
        alphabet symbol, mirroring the n-gram encoder's ``"map"``
        policy).  The encoder's ``"skip"`` policy cannot be represented
        length-preservingly and resolves to ``"raise"`` here.
    """

    name = "text"
    default_strategy = "char_sub"

    def __init__(
        self,
        alphabet: str = DEFAULT_ALPHABET,
        *,
        unknown_policy: str = "raise",
    ) -> None:
        if not alphabet:
            raise ConfigurationError("alphabet must be non-empty")
        if len(set(alphabet)) != len(alphabet):
            raise ConfigurationError("alphabet contains duplicate characters")
        if len(alphabet) > 256:
            raise ConfigurationError(
                f"alphabet has {len(alphabet)} symbols; uint8 codes support at most 256"
            )
        if unknown_policy not in ("raise", "map"):
            raise ConfigurationError(
                f"unknown_policy must be 'raise' or 'map', got {unknown_policy!r}"
            )
        self.alphabet = alphabet
        self.unknown_policy = unknown_policy
        self._char_to_code = {ch: i for i, ch in enumerate(alphabet)}

    @classmethod
    def for_model(cls, model: Any = None) -> "TextDomain":
        """Adopt the model encoder's alphabet and unknown policy."""
        encoder = getattr(model, "encoder", None)
        alphabet = getattr(encoder, "alphabet", None)
        if not isinstance(alphabet, str) or not alphabet:
            return cls()
        policy = getattr(encoder, "unknown_policy", "raise")
        return cls(alphabet, unknown_policy="map" if policy == "map" else "raise")

    def matches(self, item: Any) -> bool:
        return isinstance(item, str)

    def to_internal(self, item: Any) -> np.ndarray:
        if isinstance(item, np.ndarray):
            # Already in code form (idempotent re-entry, e.g. campaign
            # plumbing handing internal rows back to the engine).
            arr = np.asarray(item)
            if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.integer):
                raise ConfigurationError(
                    f"text code arrays must be 1-D integer, got {arr.dtype} {arr.shape}"
                )
            if arr.size and (
                int(arr.max()) >= len(self.alphabet) or int(arr.min()) < 0
            ):
                raise ConfigurationError(
                    f"codes must lie in [0, {len(self.alphabet) - 1}], got range "
                    f"[{int(arr.min())}, {int(arr.max())}]"
                )
            return arr.astype(np.uint8, copy=False)
        if not isinstance(item, str):
            raise ConfigurationError(
                f"text domain requires str inputs, got {type(item).__name__}"
            )
        if not item:
            raise ConfigurationError("cannot fuzz an empty string")
        codes = np.empty(len(item), dtype=np.uint8)
        fallback = len(self.alphabet) - 1
        for i, ch in enumerate(item):
            code = self._char_to_code.get(ch)
            if code is None:
                if self.unknown_policy == "raise":
                    raise ConfigurationError(
                        f"character {ch!r} not in the fuzzing alphabet "
                        f"(policy 'map' substitutes the last symbol instead)"
                    )
                code = fallback
            codes[i] = code
        return codes

    def to_external(self, internal: np.ndarray) -> str:
        return "".join(self.alphabet[c] for c in np.asarray(internal).tolist())

    def stack(self, inputs) -> np.ndarray:
        rows = [self.to_internal(item) for item in inputs]
        lengths = {row.shape[0] for row in rows}
        if len(lengths) > 1:
            raise ConfigurationError(
                f"text inputs must share one length to batch, got lengths "
                f"{sorted(lengths)}"
            )
        return np.stack(rows)

    def default_constraint(self, strategy: Any) -> Constraint:
        return TextConstraint()

    def validate_strategy(self, strategy: Any) -> None:
        """Strategies drawing replacement codes must share this alphabet.

        A substitution strategy draws codes in ``[0, len(its alphabet))``
        and the domain decodes them through *its* alphabet, so a
        mismatch would silently substitute the wrong characters (or
        out-of-range codes).  Catch it at engine construction instead
        of mid-campaign.
        """
        other = getattr(strategy, "alphabet", None)
        if other is not None and other != self.alphabet:
            raise ConfigurationError(
                f"strategy {strategy.name!r} uses a {len(other)}-symbol "
                f"alphabet but the text domain (from the model's encoder) uses "
                f"{len(self.alphabet)} symbols — construct the strategy with "
                f"alphabet matching the encoder's, e.g. "
                f"CharSubstitution(alphabet=model.encoder.alphabet)"
            )

    def __repr__(self) -> str:
        return (
            f"TextDomain(alphabet_size={len(self.alphabet)}, "
            f"unknown_policy={self.unknown_policy!r})"
        )
