"""Record domain: fixed-length feature vectors (VoiceHD-style models)."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.constraints import Constraint, NullConstraint, RecordConstraint
from repro.fuzz.domains.base import FuzzDomain, register_domain

__all__ = ["RecordDomain"]


@register_domain
class RecordDomain(FuzzDomain):
    """1-D numeric feature records (the voice/biosignal modality).

    The internal representation is the float64 record itself; the
    default budget is :class:`~repro.fuzz.constraints.RecordConstraint`
    over the record's *value_range* (``[0, 1]`` for the synthetic voice
    data), except for metric-free strategies (``record_shift``).
    """

    name = "record"
    aliases = ("voice",)
    default_strategy = "record_gauss"

    def __init__(self, value_range: tuple[float, float] = (0.0, 1.0)) -> None:
        low, high = float(value_range[0]), float(value_range[1])
        if not low < high:
            raise ConfigurationError(
                f"value_range must satisfy low < high, got {value_range}"
            )
        self.value_range = (low, high)

    @classmethod
    def for_model(cls, model: Any = None) -> "RecordDomain":
        """Adopt the model encoder's value range when it exposes one."""
        encoder = getattr(model, "encoder", None)
        value_range = getattr(encoder, "value_range", None)
        if value_range is not None:
            return cls(value_range=tuple(value_range))
        return cls()

    def matches(self, item: Any) -> bool:
        return isinstance(item, np.ndarray) and item.ndim == 1

    def to_internal(self, item: Any) -> np.ndarray:
        if not isinstance(item, np.ndarray):
            raise ConfigurationError(
                f"record domain requires array inputs, got {type(item).__name__}"
            )
        arr = np.asarray(item, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"record inputs must be 1-D feature vectors, got shape {arr.shape}"
            )
        return arr

    def default_constraint(self, strategy: Any) -> Constraint:
        if getattr(strategy, "metric_free", False):
            return NullConstraint()
        return RecordConstraint(value_range=self.value_range)

    def __repr__(self) -> str:
        return f"RecordDomain(value_range={self.value_range})"
