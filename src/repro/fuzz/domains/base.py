"""The :class:`FuzzDomain` protocol: modality glue for the fuzzing engines.

The fuzzing *algorithm* (Alg. 1) only assumes greybox HV-distance
access — the paper's Sec. V-E generality claim.  Everything that is
specific to an input modality lives in a domain object instead of the
engines:

* how raw inputs are **validated and stacked** into the internal array
  representation the engines vectorize over (images stay float64
  pixel grids; strings become uint8 code arrays; records stay float64
  feature vectors);
* the **default perturbation constraint** for the modality (and its
  metric-free exceptions, e.g. ``shift``);
* the **strategy namespace** (which registered mutation strategies
  apply) and the modality's default strategy;
* the **encode surface** — whether the model's encoder supports the
  incremental (delta) path, via the shared ``DELTA_ENCODER_API``
  duck-typing check.

Domains are registered by name (``"image"``, ``"text"``, ``"record"``,
with ``"voice"`` aliasing ``"record"``) so engines, campaigns, and the
CLI can resolve them from plain strings; :func:`infer_domain` guesses
the domain of a raw input for error messages and convenience.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Optional, Sequence, Type, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.constraints import Constraint
from repro.fuzz.mutations.base import strategy_names as _strategy_names

__all__ = [
    "DELTA_ENCODER_API",
    "FuzzDomain",
    "register_domain",
    "create_domain",
    "resolve_domain",
    "infer_domain",
    "domain_names",
    "get_domain_class",
]

#: Duck-typed surface an encoder must expose for the incremental
#: (delta) encode path.  ``hvs_from_accumulators`` is part of it so the
#: accumulator→hypervector rule (Eq. 1 tie-breaking) stays owned by the
#: encoder.  Shared by the sequential and batched engines across every
#: domain.
DELTA_ENCODER_API = (
    "quantize",
    "accumulate_batch",
    "accumulate_delta",
    "hvs_from_accumulators",
)


class FuzzDomain(ABC):
    """Owns everything modality-specific about a fuzzing campaign.

    The engines only ever see the domain's *internal representation*:
    a numpy array per input, stackable into an ``(n, …)`` batch, whose
    bytes key the dedupe caches and whose rows ride the seed pools.
    Raw (external) inputs cross into that representation exactly once,
    at campaign entry, and cross back exactly once, when an adversarial
    example is reported.
    """

    #: Registry key; also the strategy-namespace tag strategies carry.
    name: ClassVar[str] = ""
    #: Alternative registry names (e.g. ``"voice"`` for the record domain).
    aliases: ClassVar[tuple[str, ...]] = ()
    #: Strategy used when a campaign does not name one.
    default_strategy: ClassVar[str] = ""

    # -- resolution --------------------------------------------------------
    @classmethod
    def for_model(cls, model: Any = None) -> "FuzzDomain":
        """Build a domain instance, optionally adapted to *model*.

        The default ignores the model; domains with model-dependent
        state (the text domain's alphabet) override this.
        """
        return cls()

    # -- raw ↔ internal representation -------------------------------------
    @abstractmethod
    def matches(self, item: Any) -> bool:
        """Whether *item* looks like a raw input of this modality."""

    @abstractmethod
    def to_internal(self, item: Any) -> np.ndarray:
        """Validate one raw input and return its internal array form."""

    def to_external(self, internal: np.ndarray) -> Any:
        """Convert an internal array back to the user-facing input form."""
        return np.asarray(internal).copy()

    def stack(self, inputs: Sequence[Any]) -> np.ndarray:
        """Validate and stack raw inputs into an ``(n, …)`` internal batch."""
        rows = [self.to_internal(item) for item in inputs]
        try:
            return np.stack(rows)
        except ValueError as exc:
            raise ConfigurationError(
                f"{self.name} inputs must share one shape to batch: {exc}"
            ) from None

    # -- modality defaults -------------------------------------------------
    @abstractmethod
    def default_constraint(self, strategy: Any) -> Constraint:
        """The modality's default perturbation budget for *strategy*."""

    def validate_strategy(self, strategy: Any) -> None:
        """Reject strategies incompatible with this domain instance.

        The namespace tag is checked by the engines; this hook is for
        *instance-level* compatibility (the text domain requires the
        strategy's replacement alphabet to match its own).  Default:
        everything in the namespace is fine.
        """

    def strategy_names(self) -> list[str]:
        """Registered mutation strategies in this domain's namespace."""
        return _strategy_names(self.name)

    # -- encode surface ----------------------------------------------------
    def delta_encoder(self, model: Any) -> Optional[Any]:
        """The model's encoder when it supports incremental encoding.

        Returns ``None`` when any part of :data:`DELTA_ENCODER_API` is
        missing, in which case the engines fall back to scratch
        ``encode_batch`` calls.
        """
        encoder = getattr(model, "encoder", None)
        if encoder is not None and all(
            callable(getattr(encoder, name, None)) for name in DELTA_ENCODER_API
        ):
            return encoder
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_DOMAINS: dict[str, Type[FuzzDomain]] = {}


def register_domain(cls: Type[FuzzDomain]) -> Type[FuzzDomain]:
    """Class decorator adding *cls* to the registry under name + aliases."""
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} must define a non-empty `name`")
    for key in (cls.name, *cls.aliases):
        if key in _DOMAINS:
            raise ConfigurationError(f"domain name {key!r} is already registered")
        _DOMAINS[key] = cls
    return cls


def domain_names(*, include_aliases: bool = True) -> list[str]:
    """Registered domain names (CLI choices)."""
    if include_aliases:
        return sorted(_DOMAINS)
    return sorted({cls.name for cls in _DOMAINS.values()})


def get_domain_class(name: str) -> Type[FuzzDomain]:
    """The domain class registered under *name* (raises on unknown names)."""
    try:
        return _DOMAINS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fuzzing domain {name!r}; available: {domain_names()}"
        ) from None


def create_domain(name: str, *, model: Any = None) -> FuzzDomain:
    """Instantiate the domain registered under *name*.

    When *model* is given, the domain may adapt to it (the text domain
    reads the model encoder's alphabet and unknown-character policy).
    """
    return get_domain_class(name).for_model(model)


def resolve_domain(
    domain: Union[None, str, FuzzDomain],
    *,
    strategy: Any = None,
    model: Any = None,
) -> FuzzDomain:
    """Normalise a ``domain`` argument into a :class:`FuzzDomain`.

    ``None`` infers the domain from the mutation strategy's namespace
    tag; a string goes through the registry; instances pass through.
    """
    if isinstance(domain, FuzzDomain):
        return domain
    if isinstance(domain, str):
        return create_domain(domain, model=model)
    if domain is None:
        if strategy is None or not getattr(strategy, "domain", ""):
            raise ConfigurationError(
                "cannot infer a fuzzing domain: pass `domain` explicitly"
            )
        return create_domain(strategy.domain, model=model)
    raise ConfigurationError(
        f"domain must be a name, FuzzDomain or None, got {type(domain).__name__}"
    )


def infer_domain(item: Any, *, model: Any = None) -> FuzzDomain:
    """Guess the domain of one raw input (string → text, 2-D → image, …)."""
    seen: set[Type[FuzzDomain]] = set()
    for cls in _DOMAINS.values():
        if cls in seen:
            continue
        seen.add(cls)
        probe = cls.for_model(model)
        if probe.matches(item):
            return probe
    raise ConfigurationError(
        f"no registered domain matches input of type {type(item).__name__}; "
        f"available: {domain_names(include_aliases=False)}"
    )
