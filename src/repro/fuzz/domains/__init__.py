"""Fuzzing domains: one engine, many input modalities (Sec. V-E).

Importing this package registers the built-in domains, so
``create_domain("text")`` works immediately after ``import repro.fuzz``.
"""

from repro.fuzz.domains.base import (
    DELTA_ENCODER_API,
    FuzzDomain,
    create_domain,
    domain_names,
    get_domain_class,
    infer_domain,
    register_domain,
    resolve_domain,
)
from repro.fuzz.domains.image import ImageDomain
from repro.fuzz.domains.record import RecordDomain
from repro.fuzz.domains.text import TextDomain

__all__ = [
    "DELTA_ENCODER_API",
    "FuzzDomain",
    "ImageDomain",
    "RecordDomain",
    "TextDomain",
    "create_domain",
    "domain_names",
    "get_domain_class",
    "infer_domain",
    "register_domain",
    "resolve_domain",
]
