"""Image domain: the paper's grey-scale pixel-grid modality."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.constraints import Constraint, ImageConstraint, NullConstraint
from repro.fuzz.domains.base import FuzzDomain, register_domain

__all__ = ["ImageDomain"]


@register_domain
class ImageDomain(FuzzDomain):
    """Grey-scale ``(H, W)`` images with values in [0, 255].

    The internal representation is the float64 pixel grid itself; the
    default budget is the paper's normalized ``L2 < 1``
    (:class:`~repro.fuzz.constraints.ImageConstraint`), except for
    metric-free strategies such as ``shift`` (Table II's footnote that
    distance metrics are "not meaningful" there), which default to
    :class:`~repro.fuzz.constraints.NullConstraint`.
    """

    name = "image"
    default_strategy = "gauss"

    def matches(self, item: Any) -> bool:
        return isinstance(item, np.ndarray) and item.ndim == 2

    def to_internal(self, item: Any) -> np.ndarray:
        if not isinstance(item, np.ndarray):
            raise ConfigurationError(
                f"image domain requires array inputs, got {type(item).__name__} "
                "— use the text domain for string inputs"
            )
        arr = np.asarray(item, dtype=np.float64)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"image inputs must be 2-D (H, W), got shape {arr.shape}"
            )
        return arr

    def default_constraint(self, strategy: Any) -> Constraint:
        if getattr(strategy, "metric_free", False):
            return NullConstraint()
        return ImageConstraint()
