"""Perturbation constraints (Sec. IV).

"To ensure the added perturbations are within an 'invisible' range, we
set a threshold for the distance metric during fuzzing (e.g., L2 < 1).
When generated images are beyond this limit, it is regarded as
unacceptable and then discarded.  This constraint can be modified by the
user" — this module is that user-modifiable budget.

A constraint knows its input domain: it can *clip* candidates into the
valid input space, *accept/reject* them against the distance budget
relative to the original, and *measure* the final perturbation for
reporting.  :class:`ImageConstraint` implements the paper's normalized
L1/L2 budgets; :class:`TextConstraint` budgets character edits for the
text modality; :class:`NullConstraint` disables budgeting (what the
``shift`` strategy uses by default, per Table II's footnote that
distance metrics are "not meaningful" for shift).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, ConstraintError
from repro.metrics.distances import perturbation_metrics
from repro.utils.validation import check_positive_float

__all__ = [
    "Constraint",
    "ImageConstraint",
    "NullConstraint",
    "RecordConstraint",
    "TextConstraint",
]


class Constraint(ABC):
    """Perturbation budget + domain glue for one input modality."""

    @abstractmethod
    def clip(self, candidates: Any) -> Any:
        """Project candidates into the valid input space (e.g. [0, 255])."""

    @abstractmethod
    def accept(self, original: Any, candidates: Any) -> np.ndarray:
        """Boolean mask of candidates whose perturbation is within budget."""

    @abstractmethod
    def measure(self, original: Any, candidate: Any) -> dict[str, float]:
        """Perturbation metrics of one candidate (for reporting)."""


class ImageConstraint(Constraint):
    """Normalized-distance budget for grey-scale images.

    Parameters
    ----------
    max_l2:
        Reject candidates with normalized L2 distance above this (the
        paper's example budget is 1.0).  ``None`` disables the check.
    max_l1:
        Optional normalized L1 budget (off by default; the paper only
        quotes the L2 form).
    max_linf:
        Optional per-pixel budget in [0, 1] units.
    """

    def __init__(
        self,
        max_l2: Optional[float] = 1.0,
        max_l1: Optional[float] = None,
        max_linf: Optional[float] = None,
    ) -> None:
        for name, value in (("max_l2", max_l2), ("max_l1", max_l1), ("max_linf", max_linf)):
            if value is not None:
                check_positive_float(value, name)
        if max_l2 is None and max_l1 is None and max_linf is None:
            raise ConstraintError(
                "all budgets are None — use NullConstraint to disable budgeting"
            )
        self.max_l2 = max_l2
        self.max_l1 = max_l1
        self.max_linf = max_linf

    def clip(self, candidates: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(candidates, dtype=np.float64), 0.0, 255.0)

    def accept(self, original: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        orig = np.asarray(original, dtype=np.float64)
        cand = np.asarray(candidates, dtype=np.float64)
        if cand.ndim == 2:
            cand = cand[None]
        if cand.shape[1:] != orig.shape:
            raise ConstraintError(
                f"candidates {cand.shape[1:]} do not match original {orig.shape}"
            )
        delta = (cand - orig[None]) / 255.0
        flat = delta.reshape(cand.shape[0], -1)
        mask = np.ones(cand.shape[0], dtype=bool)
        if self.max_l2 is not None:
            mask &= np.linalg.norm(flat, axis=1) <= self.max_l2
        if self.max_l1 is not None:
            mask &= np.abs(flat).sum(axis=1) <= self.max_l1
        if self.max_linf is not None:
            mask &= np.abs(flat).max(axis=1) <= self.max_linf
        return mask

    def measure(self, original: np.ndarray, candidate: np.ndarray) -> dict[str, float]:
        return perturbation_metrics(original, candidate)

    def __repr__(self) -> str:
        return (
            f"ImageConstraint(max_l2={self.max_l2}, max_l1={self.max_l1}, "
            f"max_linf={self.max_linf})"
        )


class TextConstraint(Constraint):
    """Character-Hamming budget for length-preserving text mutation.

    Accepts candidates whose Hamming distance (number of differing
    character positions) stays within *max_edits*.  Works on strings
    and on the text domain's uint8 code arrays alike; the array form is
    fully vectorized across candidates, mirroring the image budget.

    Text mutation is length-preserving by contract, so unequal-length
    original/candidate pairs are a configuration bug, not a rejectable
    mutant — they raise :class:`~repro.errors.ConfigurationError`
    instead of being silently scored or broadcast.
    """

    def __init__(self, max_edits: int = 30) -> None:
        if max_edits < 1:
            raise ConstraintError(f"max_edits must be >= 1, got {max_edits}")
        self.max_edits = int(max_edits)

    @staticmethod
    def _edits(original: str, candidate: str) -> float:
        if len(original) != len(candidate):
            raise ConfigurationError(
                f"text mutation must preserve length: original has "
                f"{len(original)} characters, candidate {len(candidate)}"
            )
        return float(sum(a != b for a, b in zip(original, candidate)))

    @staticmethod
    def _as_code_rows(original, candidates) -> tuple[np.ndarray, np.ndarray]:
        orig = np.asarray(original)
        cand = np.asarray(candidates)
        if cand.ndim == 1:
            cand = cand[None]
        if orig.ndim != 1 or cand.ndim != 2:
            raise ConfigurationError(
                f"expected a (L,) original and (n, L) candidates, got "
                f"{orig.shape} and {np.asarray(candidates).shape}"
            )
        if cand.shape[1] != orig.shape[0]:
            raise ConfigurationError(
                f"text mutation must preserve length: original has "
                f"{orig.shape[0]} characters, candidates {cand.shape[1]}"
            )
        return orig, cand

    def clip(self, candidates: Any) -> Any:
        return candidates

    def accept(self, original: Any, candidates: Any) -> np.ndarray:
        if isinstance(original, np.ndarray) or isinstance(candidates, np.ndarray):
            orig, cand = self._as_code_rows(original, candidates)
            return (cand != orig[None]).sum(axis=1) <= self.max_edits
        return np.asarray(
            [self._edits(original, cand) <= self.max_edits for cand in candidates],
            dtype=bool,
        )

    def measure(self, original: Any, candidate: Any) -> dict[str, float]:
        if isinstance(original, np.ndarray) or isinstance(candidate, np.ndarray):
            orig, cand = self._as_code_rows(original, candidate)
            return {"edits": float((cand[0] != orig).sum())}
        return {"edits": self._edits(original, candidate)}

    def __repr__(self) -> str:
        return f"TextConstraint(max_edits={self.max_edits})"


class RecordConstraint(Constraint):
    """Distance budget for fixed-length feature records (third modality).

    Distances are computed on records rescaled so *value_range* spans
    [0, 1] — the record analogue of dividing grey levels by 255 — so
    budgets carry the same meaning as the image constraint's.
    """

    def __init__(
        self,
        max_l2: Optional[float] = 1.0,
        max_l1: Optional[float] = None,
        value_range: tuple[float, float] = (0.0, 1.0),
    ) -> None:
        for name, value in (("max_l2", max_l2), ("max_l1", max_l1)):
            if value is not None:
                check_positive_float(value, name)
        if max_l2 is None and max_l1 is None:
            raise ConstraintError(
                "all budgets are None — use NullConstraint to disable budgeting"
            )
        low, high = float(value_range[0]), float(value_range[1])
        if not low < high:
            raise ConstraintError(f"value_range must satisfy low < high, got {value_range}")
        self.max_l2 = max_l2
        self.max_l1 = max_l1
        self.value_range = (low, high)

    def _scaled_delta(self, original: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        orig = np.asarray(original, dtype=np.float64)
        cand = np.asarray(candidates, dtype=np.float64)
        if cand.ndim == 1:
            cand = cand[None]
        if orig.ndim != 1 or cand.shape[1:] != orig.shape:
            raise ConstraintError(
                f"candidates {cand.shape[1:]} do not match original {orig.shape}"
            )
        span = self.value_range[1] - self.value_range[0]
        return (cand - orig[None]) / span

    def clip(self, candidates: np.ndarray) -> np.ndarray:
        return np.clip(
            np.asarray(candidates, dtype=np.float64), *self.value_range
        )

    def accept(self, original: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        delta = self._scaled_delta(original, candidates)
        mask = np.ones(delta.shape[0], dtype=bool)
        if self.max_l2 is not None:
            mask &= np.linalg.norm(delta, axis=1) <= self.max_l2
        if self.max_l1 is not None:
            mask &= np.abs(delta).sum(axis=1) <= self.max_l1
        return mask

    def measure(self, original: np.ndarray, candidate: np.ndarray) -> dict[str, float]:
        delta = self._scaled_delta(original, candidate)[0]
        return {
            "l1": float(np.abs(delta).sum()),
            "l2": float(np.linalg.norm(delta)),
            "linf": float(np.abs(delta).max()),
            "l0": float((np.abs(delta) > 1e-12).sum()),
        }

    def __repr__(self) -> str:
        return (
            f"RecordConstraint(max_l2={self.max_l2}, max_l1={self.max_l1}, "
            f"value_range={self.value_range})"
        )


class NullConstraint(Constraint):
    """No budget: accept everything (clipping float images only).

    The default for metric-free strategies (``shift``,
    ``record_shift``), whose perturbation metrics the paper deems not
    meaningful (every pixel "moves").  Integer arrays — the text
    domain's code rows — pass through untouched; codes are indices, not
    grey levels, so [0, 255] clipping does not apply.
    """

    def clip(self, candidates: Any) -> Any:
        if isinstance(candidates, np.ndarray) and not np.issubdtype(
            candidates.dtype, np.integer
        ):
            return np.clip(candidates.astype(np.float64, copy=False), 0.0, 255.0)
        return candidates

    def accept(self, original: Any, candidates: Any) -> np.ndarray:
        n = len(candidates)
        return np.ones(n, dtype=bool)

    def measure(self, original: Any, candidate: Any) -> dict[str, float]:
        if isinstance(original, np.ndarray) and not np.issubdtype(
            np.asarray(original).dtype, np.integer
        ):
            return perturbation_metrics(original, candidate)
        return {}

    def __repr__(self) -> str:
        return "NullConstraint()"
