"""Prediction targets: the model-interaction surface of the fuzzing engines.

HDTest's oracle (Sec. IV) is *self*-differential: one model, compared
against its own prediction on the unmutated input.  HDXplore (Thapa et
al., 2021) showed the stronger form for HDC — run K independently-seeded
models on the same input and hunt for *cross-model* discrepancies, then
feed them back to retrain and harden the members.  Both engines now
talk to the system under test exclusively through a
:class:`PredictionTarget`:

* :class:`SingleModelTarget` — one classifier, today's behaviour.  Every
  call is a pass-through to the wrapped model, so K = 1 campaigns are
  **bit-identical** to the pre-abstraction engines (property-tested in
  ``tests/fuzz/test_targets.py``).
* :class:`ModelEnsembleTarget` — K ≥ 2 members with independently-spawned
  item memories (mixed families welcome: dense bipolar next to packed
  binary).  Batched ``predict`` / ``similarities`` run every member
  lock-step over the same child block — one fused call per member per
  iteration, with per-member delta encoding riding the seed pools — so
  K-model fuzzing costs roughly K single-model iterations rather than a
  serial re-fuzz per member (``benchmarks/bench_ensemble_fuzzing.py``).

The ensemble's oracles (:class:`~repro.fuzz.oracle.CrossModelOracle`,
:class:`~repro.fuzz.oracle.MajorityOracle`) and guidance signal
(:class:`~repro.fuzz.fitness.AgreementMarginFitness`) consume the
:class:`TargetPredictions` bundles produced here; the discrepancy
*debugging* loop that retrains members on what the fuzzer finds lives
in :func:`repro.defense.retrain.debug_ensemble`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, NotTrainedError
from repro.utils.rng import RngLike, ensure_rng, spawn

__all__ = [
    "TargetPredictions",
    "TargetReference",
    "MemberShard",
    "PredictionTarget",
    "SingleModelTarget",
    "ModelEnsembleTarget",
    "SharedCodebookEnsembleTarget",
    "resolve_target",
    "vote_counts",
    "majority_vote",
]

#: Methods every fuzzable member must expose (the Sec. IV grey-box API).
GREYBOX_API = ("encode", "encode_batch", "predict_hv", "reference_hv")


# -- ensemble voting helpers ------------------------------------------------
def vote_counts(member_labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Per-class vote counts of a ``(K, n)`` member-label block → ``(n, C)``."""
    labels = np.atleast_2d(np.asarray(member_labels, dtype=np.int64))
    counts = np.zeros((labels.shape[1], int(n_classes)), dtype=np.int64)
    rows = np.arange(labels.shape[1])
    for member in labels:
        counts[rows, member] += 1
    return counts

def majority_vote(member_labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Majority label per column of a ``(K, n)`` block (ties → lowest label)."""
    return vote_counts(member_labels, n_classes).argmax(axis=1).astype(np.int64)


class TargetPredictions:
    """Lock-step member predictions over one child block.

    Attributes
    ----------
    labels:
        ``(K, n)`` int64 — member *m*'s predicted class for child *j*.
    similarities:
        ``(K, n, C)`` float64 per-class similarities, or ``None`` when
        the consumer (oracle + fitness) only needs labels.
    """

    __slots__ = ("labels", "similarities")

    def __init__(self, labels: np.ndarray, similarities: Optional[np.ndarray] = None):
        self.labels = labels
        self.similarities = similarities

    @property
    def n_members(self) -> int:
        return int(self.labels.shape[0])

    def __len__(self) -> int:
        return int(self.labels.shape[1])

    def slice(self, lo: int, hi: int) -> "TargetPredictions":
        """Column slice ``[lo, hi)`` — one plan's children out of a fused block."""
        return TargetPredictions(
            self.labels[:, lo:hi],
            None if self.similarities is None else self.similarities[:, lo:hi],
        )


class TargetReference:
    """Per-input reference data: what "unchanged behaviour" means.

    Attributes
    ----------
    label:
        The scalar reference label reported in outcomes — the model's
        prediction for a single model, the (deterministic) majority
        vote for an ensemble.
    votes:
        ``(K,)`` member labels on the original input.
    fitness_hv:
        ``AM[label]`` of a single model (what the cosine fitnesses
        score against); ``None`` for ensembles, whose fitness consumes
        :class:`TargetPredictions` instead.
    """

    __slots__ = ("label", "votes", "fitness_hv")

    def __init__(self, label: int, votes: np.ndarray, fitness_hv: Optional[np.ndarray]):
        self.label = label
        self.votes = votes
        self.fitness_hv = fitness_hv


# -- delta (incremental encoding) surfaces ---------------------------------
def _acc_dtype(component_count: int) -> type:
    """Accumulator storage dtype: exact at paper scale, widens as needed."""
    return np.int16 if component_count <= np.iinfo(np.int16).max else np.int32


def _levels_dtype(encoder: Any) -> type:
    return (
        np.int16
        if getattr(encoder, "levels", 256) <= np.iinfo(np.int16).max
        else np.int64
    )


class _SingleDeltaSurface:
    """Incremental-encoding algebra of one model's encoder.

    Exact port of the pre-abstraction engine helpers (same operations,
    same compact dtypes), so the single-model delta path stays
    bit-identical to scratch re-encoding *and* to the historical
    implementation.
    """

    __slots__ = ("_encoder",)

    def __init__(self, encoder: Any) -> None:
        self._encoder = encoder

    def child_levels(self, batch: np.ndarray) -> np.ndarray:
        """Quantised levels of *batch*, flattened per item, compact dtype."""
        levels = self._encoder.quantize(batch).reshape(batch.shape[0], -1)
        return levels.astype(_levels_dtype(self._encoder))

    def seed_side_data(self, stacked: np.ndarray):
        """Accumulators + levels of generation-0 inputs, compact dtypes."""
        accs = self._encoder.accumulate_batch(stacked).astype(
            _acc_dtype(stacked[0].size)
        )
        return accs, self.child_levels(stacked)

    def accumulate_delta(self, child_levels, parent_levels, parent_accs):
        # Children obey the same |acc| ≤ component-count bound as the
        # parents, so the pool's compact dtype is exact end-to-end — no
        # int64 round-trip (~4× less memory traffic per block).
        return self._encoder.accumulate_delta(
            child_levels, parent_levels, parent_accs,
            result_dtype=parent_accs.dtype,
        )

    def hvs_from_accumulators(self, accs: np.ndarray) -> tuple[np.ndarray, ...]:
        return (self._encoder.hvs_from_accumulators(accs),)


class _EnsembleDeltaSurface:
    """Per-member delta algebra, stacked along a member axis.

    Side arrays carry one extra leading "member" axis per seed —
    accumulators ``(K, D)`` and levels ``(K, P)`` — so each surviving
    seed can parent member *m*'s children from member *m*'s own
    accumulator.  Quantisation can differ across members (mixed
    families), hence per-member level rows too.
    """

    __slots__ = ("_members",)

    def __init__(self, encoders: Sequence[Any]) -> None:
        self._members = [_SingleDeltaSurface(e) for e in encoders]

    def child_levels(self, batch: np.ndarray) -> np.ndarray:
        return np.stack([m.child_levels(batch) for m in self._members], axis=1)

    def seed_side_data(self, stacked: np.ndarray):
        pairs = [m.seed_side_data(stacked) for m in self._members]
        accs = np.stack([acc for acc, _ in pairs], axis=1)
        levels = np.stack([lvl for _, lvl in pairs], axis=1)
        return accs, levels

    def accumulate_delta(self, child_levels, parent_levels, parent_accs):
        return np.stack(
            [
                m.accumulate_delta(
                    child_levels[:, i], parent_levels[:, i], parent_accs[:, i]
                )
                for i, m in enumerate(self._members)
            ],
            axis=1,
        )

    def hvs_from_accumulators(self, accs: np.ndarray) -> tuple[np.ndarray, ...]:
        return tuple(
            m.hvs_from_accumulators(accs[:, i])[0]
            for i, m in enumerate(self._members)
        )


# -- targets ----------------------------------------------------------------
@dataclass(frozen=True)
class MemberShard:
    """What one member-sharded worker owns: a single member's compute state.

    The member-sharded executor splits a target by *member* rather than
    by input: worker *m* receives exactly one shard and never sees the
    other K−1 members.  ``payload`` is deliberately the **smallest**
    object that can answer that member's queries — the full classifier
    when the member encodes its own hypervector block
    (``encodes_locally=True``, independent codebooks), but only the
    member's :class:`~repro.hdc.associative_memory.AssociativeMemory`
    for shared-codebook ensembles, where the parent encodes once and the
    (possibly large, possibly rematerialized) codebook never crosses the
    process boundary at all.
    """

    member_index: int
    payload: Any
    encodes_locally: bool

    def predict_block(self, hvs: np.ndarray, *, with_similarities: bool = False):
        """This member's ``(labels, sims-or-None)`` rows over *hvs*.

        Mirrors the corresponding rows of the parent target's
        ``predict_hvs`` exactly (same argmax, same dtypes), so stacking
        shard replies in member order reproduces the lock-step
        :class:`TargetPredictions` bit for bit.
        """
        if self.encodes_locally:
            if with_similarities:
                sims = self.payload.associative_memory.similarities(hvs)
                return sims.argmax(axis=1).astype(np.int64), sims
            return np.asarray(self.payload.predict_hv(hvs), dtype=np.int64), None
        # AM-only payload: ``model.predict_hv`` is ``am.predict`` in every
        # family (asserted by the conformance suite), so querying the bare
        # AM reproduces the lock-step rows exactly.
        if with_similarities:
            sims = self.payload.similarities(hvs)
            return sims.argmax(axis=1).astype(np.int64), sims
        return np.asarray(self.payload.predict(hvs), dtype=np.int64), None

    def encode_block(self, children: np.ndarray) -> np.ndarray:
        """Scratch-encode *children* through this member's own codebook."""
        if not self.encodes_locally:
            raise ConfigurationError(
                "shared-codebook member shards hold no encoder; the parent "
                "encodes once and broadcasts hypervectors"
            )
        return self.payload.encode_batch(children)


class PredictionTarget(ABC):
    """What the fuzzing engines interrogate: one model, or K in lock-step.

    Hypervectors cross the interface as *bundles* — one array per
    member, because members encode through independent (and possibly
    differently-packed) codebooks.  Everything else is stacked along a
    leading member axis.
    """

    # -- composition -------------------------------------------------------
    @property
    @abstractmethod
    def members(self) -> tuple[Any, ...]:
        """The underlying classifiers, primary first."""

    @property
    def n_members(self) -> int:
        return len(self.members)

    @property
    def n_encode_blocks(self) -> int:
        """How many hypervector blocks :meth:`encode_batch` emits.

        One per member by default (independent codebooks encode
        independently); a shared-codebook ensemble emits a single block
        that all K associative memories query — the engines size their
        fused encode work off this, not off ``n_members``.
        """
        return self.n_members

    @property
    def primary(self) -> Any:
        """The member that anchors domain resolution and reporting."""
        return self.members[0]

    @property
    def n_classes(self) -> int:
        return int(self.primary.n_classes)

    # -- validation --------------------------------------------------------
    @staticmethod
    def check_member(model: Any) -> None:
        """Reject models lacking the grey-box fuzzing API (Sec. IV)."""
        missing = [n for n in GREYBOX_API if not callable(getattr(model, n, None))]
        if missing or not hasattr(model, "is_trained"):
            raise ConfigurationError(
                f"model {type(model).__name__} lacks the grey-box fuzzing API "
                f"(missing: {missing if missing else ['is_trained']})"
            )
        if not model.is_trained:
            raise NotTrainedError("cannot fuzz an untrained model")

    def training_counts(self) -> bytes:
        """Per-class training counts of every member, as bytes.

        Campaign schedulers (the process executor's broadcast-reuse
        check) use this to detect in-place retraining of any member.
        """
        chunks = []
        for member in self.members:
            am = getattr(member, "associative_memory", None)
            chunks.append(am.counts.tobytes() if am is not None else b"")
        return b"|".join(chunks)

    # -- member sharding ----------------------------------------------------
    def member_shards(self) -> tuple[MemberShard, ...]:
        """Split this target into one self-contained shard per member.

        Default: each shard carries the full member classifier and
        encodes its own hypervector block (independent codebooks).
        Shared-codebook targets override this to ship only each
        member's associative memory.
        """
        return tuple(
            MemberShard(i, member, True) for i, member in enumerate(self.members)
        )

    # -- encode / predict surface ------------------------------------------
    @abstractmethod
    def encode_batch(self, children: np.ndarray) -> tuple[np.ndarray, ...]:
        """Scratch-encode *children* once per member → per-member bundle."""

    @abstractmethod
    def predict_hvs(
        self, bundle: tuple[np.ndarray, ...], *, with_similarities: bool = False
    ) -> TargetPredictions:
        """Predict every member's labels over its bundle entry, lock-step."""

    @abstractmethod
    def reference(self, predictions: TargetPredictions, index: int = 0) -> TargetReference:
        """Reference data for input *index* of a prediction block."""

    # -- incremental encoding ----------------------------------------------
    @abstractmethod
    def delta_encoder(self, domain: Any) -> Any:
        """Opaque delta-capable encoder handle, or ``None`` for scratch.

        The engines route this through an overridable hook
        (``HDTest._delta_encoder``) so tests and benchmarks can force
        the scratch path; pass the result to :meth:`delta_surface`.
        """

    @abstractmethod
    def delta_surface(self, encoder_handle: Any):
        """Wrap :meth:`delta_encoder`'s result into a delta surface."""

    # -- convenience (raw inputs) ------------------------------------------
    def predict(self, inputs: Sequence[Any]) -> np.ndarray:
        """Member predictions on raw inputs → ``(K, n)`` int64."""
        return np.stack([m.predict(inputs) for m in self.members])

    def similarities(self, inputs: Sequence[Any]) -> np.ndarray:
        """Member per-class similarities on raw inputs → ``(K, n, C)``."""
        return np.stack([m.similarities(inputs) for m in self.members])

    # -- re-targeting -------------------------------------------------------
    def with_backend(self, backend: Optional[str]) -> "PredictionTarget":
        """Re-target every member for a compute *backend* (exact)."""
        if backend is None or backend == "dense":
            return self
        from repro.hdc.backends.dispatch import resolve_model_backend

        return type(self)(*[resolve_model_backend(m, backend) for m in self.members])

    def __repr__(self) -> str:
        names = ", ".join(type(m).__name__ for m in self.members)
        return f"{type(self).__name__}({names})"


class SingleModelTarget(PredictionTarget):
    """The paper's setting: one classifier under self-differential test.

    Every method is a pass-through to the wrapped model, so engines
    built on a :class:`SingleModelTarget` behave bit-identically to the
    pre-abstraction engines (same calls, same arrays, same dtypes).
    """

    def __init__(self, model: Any) -> None:
        self.check_member(model)
        self._model = model

    @property
    def members(self) -> tuple[Any, ...]:
        return (self._model,)

    def encode_batch(self, children: np.ndarray) -> tuple[np.ndarray, ...]:
        return (self._model.encode_batch(children),)

    def predict_hvs(self, bundle, *, with_similarities: bool = False):
        if with_similarities:
            sims = self._model.associative_memory.similarities(bundle[0])
            return TargetPredictions(
                sims.argmax(axis=1).astype(np.int64)[None], sims[None]
            )
        return TargetPredictions(np.asarray(self._model.predict_hv(bundle[0]))[None])

    def reference(self, predictions: TargetPredictions, index: int = 0):
        label = int(predictions.labels[0, index])
        return TargetReference(
            label, predictions.labels[:, index], self._model.reference_hv(label)
        )

    def delta_encoder(self, domain: Any) -> Any:
        """The model's encoder when it supports incremental encoding."""
        return domain.delta_encoder(self._model)

    def delta_surface(self, encoder_handle: Any):
        return None if encoder_handle is None else _SingleDeltaSurface(encoder_handle)


class ModelEnsembleTarget(PredictionTarget):
    """K ≥ 2 independently-seeded classifiers fuzzed in lock-step.

    Members must agree on ``n_classes`` and accept the same raw inputs;
    everything else — family, packing, hypervector dimension — may
    differ per member (mixed-family ensembles are first-class).  The
    fuzzing engines pair an ensemble with the cross-model oracles and
    the agreement-margin fitness by default.

    Parameters
    ----------
    *members:
        Trained classifiers (or one iterable of them), primary first.

    Examples
    --------
    >>> from repro.datasets import load_digits
    >>> from repro.fuzz.targets import ModelEnsembleTarget
    >>> from repro.hdc import HDCClassifier, PixelEncoder
    >>> train, _ = load_digits(n_train=200, n_test=10, seed=3)
    >>> members = [
    ...     HDCClassifier(PixelEncoder(dimension=1024, rng=s), 10).fit(
    ...         train.images, train.labels)
    ...     for s in (0, 1, 2)
    ... ]
    >>> target = ModelEnsembleTarget(*members)
    >>> target.n_members
    3
    """

    def __init__(self, *members: Any) -> None:
        if len(members) == 1 and isinstance(members[0], (list, tuple)):
            members = tuple(members[0])
        if len(members) < 2:
            raise ConfigurationError(
                f"a model ensemble needs at least 2 members, got {len(members)} "
                "(fuzz a single model directly, or via SingleModelTarget)"
            )
        for member in members:
            self.check_member(member)
            if not hasattr(member, "associative_memory"):
                raise ConfigurationError(
                    f"ensemble member {type(member).__name__} lacks an "
                    "associative_memory; cross-model similarities need one"
                )
        classes = {int(m.n_classes) for m in members}
        if len(classes) > 1:
            raise ConfigurationError(
                f"ensemble members disagree on n_classes: {sorted(classes)}"
            )
        self._members = tuple(members)

    # -- construction helpers ----------------------------------------------
    @classmethod
    def trained_like(
        cls,
        model: Any,
        k: int,
        inputs: Sequence[Any],
        labels: Sequence[int],
        *,
        rng: RngLike = None,
        include_base: bool = True,
        backends: Optional[Sequence[Optional[str]]] = None,
    ) -> "ModelEnsembleTarget":
        """Spawn a K-member ensemble architecturally matching *model*.

        Fresh members share the base model's architecture (encoder
        family, shape, levels, dimension, class count) but draw their
        item memories from independently-spawned generators, then train
        on ``(inputs, labels)`` — HDXplore's "K independently-seeded
        models".  With *include_base* the given model is member 0 and
        ``k − 1`` fresh members join it; otherwise all *k* are fresh.
        *backends* optionally re-targets each member
        (``None``/``"dense"``/``"packed"``/``"packed-bipolar"``/
        ``"torch"``) for mixed-family ensembles.
        """
        from repro.hdc.backends.dispatch import resolve_model_backend

        if k < 2:
            raise ConfigurationError(f"ensemble size must be >= 2, got {k}")
        n_fresh = k - 1 if include_base else k
        members: list[Any] = [model] if include_base else []
        for child_rng in spawn(ensure_rng(rng), n_fresh):
            member = clone_architecture(model, rng=child_rng)
            member.fit(inputs, labels)
            members.append(member)
        if backends is not None:
            if len(backends) != k:
                raise ConfigurationError(
                    f"{len(backends)} backends for {k} members"
                )
            members = [
                resolve_model_backend(m, b) for m, b in zip(members, backends)
            ]
        return cls(*members)

    @property
    def members(self) -> tuple[Any, ...]:
        return self._members

    def copy(self) -> "ModelEnsembleTarget":
        """Independent clone of every member (for retraining loops)."""
        return ModelEnsembleTarget(*[m.copy() for m in self._members])

    # -- lock-step encode / predict ----------------------------------------
    def encode_batch(self, children: np.ndarray) -> tuple[np.ndarray, ...]:
        return tuple(m.encode_batch(children) for m in self._members)

    def predict_hvs(self, bundle, *, with_similarities: bool = False):
        if len(bundle) != self.n_members:
            raise ConfigurationError(
                f"{len(bundle)} hypervector blocks for {self.n_members} members"
            )
        if with_similarities:
            sims = np.stack(
                [
                    m.associative_memory.similarities(hvs)
                    for m, hvs in zip(self._members, bundle)
                ]
            )
            # predict == argmax over similarities in every family, so
            # labels come free once the similarity block exists.
            return TargetPredictions(sims.argmax(axis=2).astype(np.int64), sims)
        labels = np.stack(
            [m.predict_hv(hvs) for m, hvs in zip(self._members, bundle)]
        )
        return TargetPredictions(labels.astype(np.int64))

    def reference(self, predictions: TargetPredictions, index: int = 0):
        votes = predictions.labels[:, index]
        label = int(majority_vote(votes[:, None], self.n_classes)[0])
        return TargetReference(label, votes, None)

    def majority_predict(self, inputs: Sequence[Any]) -> np.ndarray:
        """The ensemble's majority-vote prediction on raw inputs → ``(n,)``."""
        return majority_vote(self.predict(inputs), self.n_classes)

    def agreement(self, inputs: Sequence[Any]) -> float:
        """Fraction of raw *inputs* on which every member agrees."""
        labels = self.predict(inputs)
        return float(np.mean((labels == labels[0]).all(axis=0)))

    # -- incremental encoding ----------------------------------------------
    def delta_encoder(self, domain: Any) -> Any:
        """Tuple of member encoders when *every* member supports delta.

        Mixed-width ensembles (members with different hypervector
        dimensions) fall back to scratch encoding: seed-pool side
        arrays stack per-member accumulators, which requires one shared
        accumulator width.
        """
        encoders = [domain.delta_encoder(m) for m in self._members]
        if any(e is None for e in encoders):
            return None
        widths = {int(m.dimension) for m in self._members}
        if len(widths) > 1:
            return None
        return tuple(encoders)

    def delta_surface(self, encoder_handle: Any):
        return (
            None
            if encoder_handle is None
            else _EnsembleDeltaSurface(encoder_handle)
        )


def _fresh_member_like(model: Any) -> Any:
    """An untrained classifier of *model*'s class sharing its encoder.

    The complement of :func:`clone_architecture`: same family and class
    count, but the codebooks are *the same object* — only the
    associative memory is fresh.  Used to build shared-codebook
    ensemble members that diverge solely through their training splits.
    """
    from repro.hdc.backends.binary import PackedBinaryHDCClassifier
    from repro.hdc.backends.bipolar import PackedBipolarHDCClassifier
    from repro.hdc.binary_model import BinaryHDCClassifier
    from repro.hdc.model import HDCClassifier

    encoder = getattr(model, "encoder", None)
    n_classes = getattr(model, "n_classes", None)
    if encoder is None or n_classes is None:
        raise ConfigurationError(
            f"cannot spawn a shared-codebook member from "
            f"{type(model).__name__}: no encoder/n_classes surface"
        )
    n_classes = int(n_classes)
    # Packed subclasses first — isinstance also matches their parents.
    if isinstance(model, PackedBipolarHDCClassifier):
        return PackedBipolarHDCClassifier(encoder, n_classes, backend=model.backend)
    if isinstance(model, PackedBinaryHDCClassifier):
        return PackedBinaryHDCClassifier(encoder, n_classes, backend=model.backend)
    if isinstance(model, BinaryHDCClassifier):
        return BinaryHDCClassifier(encoder, n_classes)
    if isinstance(model, HDCClassifier):
        return HDCClassifier(
            encoder, n_classes, bipolar_am=model.associative_memory.bipolar
        )
    raise ConfigurationError(
        f"cannot spawn a shared-codebook member from {type(model).__name__}; "
        "construct members sharing one encoder explicitly and pass them to "
        "SharedCodebookEnsembleTarget"
    )


class SharedCodebookEnsembleTarget(ModelEnsembleTarget):
    """K ≥ 2 members sharing one encoder: encode once, query K memories.

    The per-member cost of :class:`ModelEnsembleTarget` is dominated by
    its K independent encodes (every member owns its own item memory).
    When members instead share a single codebook — diverging only
    through bagged associative-memory training splits — every child
    block is encoded **once** and all K AMs query the same hypervector
    block, so encode cost and seed-pool accumulator memory become
    K-independent (``n_encode_blocks == 1``; the engines' delta side
    arrays drop their member axis).  ``benchmarks/bench_shared_codebook
    .py`` pins the speedup; ``bench_ensemble_fuzzing.py`` measures the
    diversity this trades away.

    Parameters
    ----------
    *members:
        Trained classifiers (or one iterable of them) whose ``encoder``
        is the *same object*; build them with :meth:`trained_shared`.
    """

    def __init__(self, *members: Any) -> None:
        super().__init__(*members)
        shared = self._members[0].encoder
        for member in self._members[1:]:
            if member.encoder is not shared:
                raise ConfigurationError(
                    "SharedCodebookEnsembleTarget members must share one "
                    "encoder object (use trained_shared(), or pass the same "
                    "encoder instance to every member); got distinct "
                    f"encoders on {type(member).__name__}"
                )

    # -- construction helpers ----------------------------------------------
    @classmethod
    def trained_shared(
        cls,
        model: Any,
        k: int,
        inputs: Sequence[Any],
        labels: Sequence[int],
        *,
        rng: RngLike = None,
        include_base: bool = True,
    ) -> "SharedCodebookEnsembleTarget":
        """Spawn K members around *model*'s encoder on bagged splits.

        Each fresh member reuses the base model's encoder (and therefore
        its codebooks) but trains its associative memory on an
        independent bootstrap resample of ``(inputs, labels)`` —
        decision boundaries decorrelate through the data, not the
        codebooks.  With *include_base* the given (already trained)
        model is member 0 and ``k − 1`` bagged members join it.
        """
        if k < 2:
            raise ConfigurationError(f"ensemble size must be >= 2, got {k}")
        labels_arr = np.asarray(labels)
        n = int(labels_arr.shape[0])
        if n == 0:
            raise ConfigurationError("cannot bag an empty training set")
        n_fresh = k - 1 if include_base else k
        members: list[Any] = [model] if include_base else []
        for child_rng in spawn(ensure_rng(rng), n_fresh):
            bag = child_rng.integers(0, n, size=n)
            member = _fresh_member_like(model)
            if isinstance(inputs, np.ndarray):
                subset: Any = inputs[bag]
            else:
                subset = [inputs[int(j)] for j in bag]
            member.fit(subset, labels_arr[bag])
            members.append(member)
        return cls(*members)

    # -- encode-once surface -----------------------------------------------
    @property
    def n_encode_blocks(self) -> int:
        return 1

    def member_shards(self) -> tuple[MemberShard, ...]:
        """AM-only shards: the shared codebook never leaves the parent.

        The parent encodes each child block once (delta or scratch) and
        broadcasts hypervectors; a worker holding just its member's
        associative memory can answer every query the lock-step path
        would ask of that member.
        """
        return tuple(
            MemberShard(i, member.associative_memory, False)
            for i, member in enumerate(self._members)
        )

    def encode_batch(self, children: np.ndarray) -> tuple[np.ndarray, ...]:
        """One fused encode through the shared encoder → a 1-tuple."""
        return (self.primary.encode_batch(children),)

    def predict_hvs(self, bundle, *, with_similarities: bool = False):
        if len(bundle) != 1:
            raise ConfigurationError(
                f"{len(bundle)} hypervector blocks for a shared-codebook "
                "ensemble (expected 1)"
            )
        hvs = bundle[0]
        if with_similarities:
            sims = np.stack(
                [m.associative_memory.similarities(hvs) for m in self._members]
            )
            return TargetPredictions(sims.argmax(axis=2).astype(np.int64), sims)
        labels = np.stack([m.predict_hv(hvs) for m in self._members])
        return TargetPredictions(labels.astype(np.int64))

    # -- convenience (raw inputs): encode once here too ----------------------
    def predict(self, inputs: Sequence[Any]) -> np.ndarray:
        hvs = self.primary.encode_batch(inputs)
        return np.stack(
            [np.asarray(m.predict_hv(hvs), dtype=np.int64) for m in self._members]
        )

    def similarities(self, inputs: Sequence[Any]) -> np.ndarray:
        hvs = self.primary.encode_batch(inputs)
        return np.stack(
            [m.associative_memory.similarities(hvs) for m in self._members]
        )

    # -- incremental encoding: single-surface, no member axis ----------------
    def delta_encoder(self, domain: Any) -> Any:
        """The shared encoder's delta handle (one surface for all K)."""
        return domain.delta_encoder(self.primary)

    def delta_surface(self, encoder_handle: Any):
        return None if encoder_handle is None else _SingleDeltaSurface(encoder_handle)

    # -- persistence ---------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Serialise to one ``.npz`` without duplicating the codebook.

        The file is the primary member's own payload — codebooks stored
        once, as PRF seeds when rematerialized — extended with the K−1
        other members' associative-memory arrays under ``member<i>_am_*``
        keys and an ``ensemble_size`` tag.  Plain single-model loaders
        ignore the extra keys, so the file doubles as the primary's
        checkpoint.
        """
        payload = self.primary.save_payload()
        payload["ensemble_size"] = np.asarray(self.n_members)
        for i, member in enumerate(self._members[1:], start=1):
            for key, value in member.associative_memory.state_dict().items():
                payload[f"member{i}_am_{key}"] = np.asarray(value)
        np.savez_compressed(Path(path), **payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SharedCodebookEnsembleTarget":
        """Inverse of :meth:`save`.

        Members come back in the dense family of the stored ``kind``
        (the same save-dense/repackage-later contract as the model
        classes); re-target with :meth:`with_backend` if needed.
        """
        from repro.hdc.binary_model import BinaryHDCClassifier
        from repro.hdc.model import HDCClassifier

        path = Path(path)
        with np.load(path, allow_pickle=False) as data:
            if "ensemble_size" not in data:
                raise ConfigurationError(
                    f"{path} is a single-model checkpoint, not a "
                    "shared-codebook ensemble (no ensemble_size tag)"
                )
            kind = str(data["kind"])
            k = int(data["ensemble_size"])
            member_states = []
            for i in range(1, k):
                prefix = f"member{i}_am_"
                member_states.append(
                    {
                        key[len(prefix):]: data[key]
                        for key in data.files
                        if key.startswith(prefix)
                    }
                )
        loader = BinaryHDCClassifier if kind == "pixel-binary-hdc" else HDCClassifier
        primary = loader.load(path)
        members = [primary]
        for state in member_states:
            member = _fresh_member_like(primary)
            member._am = type(primary.associative_memory).from_state_dict(state)  # noqa: SLF001
            members.append(member)
        return cls(*members)

    # -- re-targeting --------------------------------------------------------
    def copy(self) -> "SharedCodebookEnsembleTarget":
        """Clone every member's AM; the encoder object stays shared."""
        return SharedCodebookEnsembleTarget(*[m.copy() for m in self._members])

    def with_backend(self, backend: Optional[str]) -> "SharedCodebookEnsembleTarget":
        """Re-target for *backend*, re-pointing members at one encoder.

        Per-member conversion would wrap the shared codebooks in K
        equivalent-but-distinct packed encoders; since all K started
        from the same object, sharing the first conversion is exact.
        """
        if backend is None or backend == "dense":
            return self
        from repro.hdc.backends.dispatch import resolve_model_backend

        resolved = [resolve_model_backend(m, backend) for m in self._members]
        shared = resolved[0].encoder
        for member in resolved[1:]:
            member._encoder = shared  # noqa: SLF001 - exact re-share, see docstring
        return type(self)(*resolved)


def resolve_target(model: Any) -> PredictionTarget:
    """Normalise a ``model`` argument into a :class:`PredictionTarget`."""
    if isinstance(model, PredictionTarget):
        return model
    return SingleModelTarget(model)


def clone_architecture(model: Any, *, rng: RngLike = None) -> Any:
    """An untrained classifier matching *model*'s architecture.

    Codebooks (item memories) are freshly drawn from *rng* — that
    independence is what gives ensemble members decorrelated decision
    boundaries.  Supports the four pixel-model families plus the n-gram
    and record encoders; anything else raises
    :class:`~repro.errors.ConfigurationError` (build members by hand
    and pass them to :class:`ModelEnsembleTarget` directly).
    """
    from repro.hdc.backends.binary import (
        PackedBinaryHDCClassifier,
        PackedPixelEncoder,
    )
    from repro.hdc.backends.bipolar import (
        PackedBipolarEncoder,
        PackedBipolarHDCClassifier,
    )
    from repro.hdc.binary_model import BinaryHDCClassifier, BinaryPixelEncoder
    from repro.hdc.encoders.image import PixelEncoder
    from repro.hdc.encoders.ngram import NgramEncoder
    from repro.hdc.encoders.record import RecordEncoder
    from repro.hdc.item_memory import LevelMemory
    from repro.hdc.model import HDCClassifier

    encoder = getattr(model, "encoder", None)
    n_classes = getattr(model, "n_classes", None)
    if encoder is None or n_classes is None:
        raise ConfigurationError(
            f"cannot clone the architecture of {type(model).__name__}: no "
            "encoder/n_classes surface; construct ensemble members "
            "explicitly and pass them to ModelEnsembleTarget"
        )
    n_classes = int(n_classes)
    generator = ensure_rng(rng)
    # Packed subclasses first: isinstance would also match their dense
    # parents, and the packed families must clone packed.
    if isinstance(encoder, PackedBipolarEncoder):
        fresh = PackedBipolarEncoder(
            encoder.shape, levels=encoder.levels, dimension=encoder.dimension,
            rng=generator, backend=encoder.backend,
        )
        return PackedBipolarHDCClassifier(fresh, n_classes, backend=model.backend)
    if isinstance(encoder, PackedPixelEncoder):
        fresh = PackedPixelEncoder(
            encoder.shape, levels=encoder.levels, dimension=encoder.dimension,
            rng=generator, backend=encoder.backend,
        )
        return PackedBinaryHDCClassifier(fresh, n_classes, backend=model.backend)
    if isinstance(encoder, BinaryPixelEncoder):
        fresh = BinaryPixelEncoder(
            encoder.shape, levels=encoder.levels, dimension=encoder.dimension,
            rng=generator,
        )
        return BinaryHDCClassifier(fresh, n_classes)
    if isinstance(encoder, PixelEncoder):
        fresh = PixelEncoder(
            encoder.shape, levels=encoder.levels, dimension=encoder.dimension,
            rng=generator,
        )
        return HDCClassifier(
            fresh, n_classes, bipolar_am=model.associative_memory.bipolar
        )
    if isinstance(encoder, NgramEncoder):
        fresh = NgramEncoder(
            encoder.n, alphabet=encoder.alphabet, dimension=encoder.dimension,
            rng=generator, unknown_policy=encoder.unknown_policy,
        )
        return HDCClassifier(
            fresh, n_classes, bipolar_am=model.associative_memory.bipolar
        )
    if isinstance(encoder, RecordEncoder):
        level_encoding = (
            "linear" if isinstance(encoder.value_memory, LevelMemory) else "random"
        )
        fresh = RecordEncoder(
            encoder.n_features, levels=encoder.levels,
            value_range=encoder.value_range, level_encoding=level_encoding,
            dimension=encoder.dimension, rng=generator,
        )
        return HDCClassifier(
            fresh, n_classes, bipolar_am=model.associative_memory.bipolar
        )
    raise ConfigurationError(
        f"cannot clone the architecture of {type(model).__name__} "
        f"(encoder {type(encoder).__name__}); construct ensemble members "
        "explicitly and pass them to ModelEnsembleTarget"
    )
