"""JSON persistence for campaign results.

Image payloads belong in ``.npz`` bundles
(:func:`repro.analysis.figures.save_examples_npz`); what this module
persists is the *evaluation record* — per-input outcomes, per-success
metrics, and the Table II aggregates — as plain JSON so experiment runs
can be archived, diffed, and re-rendered into reports without re-running
the fuzzer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.results import CampaignResult

__all__ = ["campaign_to_dict", "save_campaigns_json", "load_campaigns_json"]

#: Version 2 added ensemble campaigns: a top-level ``n_members`` count
#: and per-example ``disagreed_members`` (which ensemble members left
#: the reference label; ``null`` for single-model campaigns).  Version 3
#: added the optional top-level ``telemetry`` snapshot (counters, phase
#: timings, retirement log — see :mod:`repro.obs.recorder`) from
#: instrumented campaigns; ``null`` for uninstrumented runs.  Version-1
#: and -2 records load unchanged — the new keys are simply absent.
_SCHEMA_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)


def campaign_to_dict(result: CampaignResult) -> dict:
    """Serialisable record of one campaign (no image payloads)."""
    outcomes = []
    for outcome in result.outcomes:
        record: dict = {
            "success": outcome.success,
            "iterations": outcome.iterations,
            "reference_label": outcome.reference_label,
        }
        if outcome.example is not None:
            example = outcome.example
            record["example"] = {
                "reference_label": example.reference_label,
                "adversarial_label": example.adversarial_label,
                "iterations": example.iterations,
                "metrics": {k: float(v) for k, v in example.metrics.items()},
                "strategy": example.strategy,
                "true_label": example.true_label,
                "disagreed_members": (
                    None
                    if example.disagreed_members is None
                    else [int(m) for m in example.disagreed_members]
                ),
            }
        outcomes.append(record)
    return {
        "schema_version": _SCHEMA_VERSION,
        "strategy": result.strategy,
        "guided": result.guided,
        "n_members": result.n_members,
        "telemetry": result.telemetry,
        "elapsed_seconds": result.elapsed_seconds,
        "summary": {
            k: (None if isinstance(v, float) and np.isnan(v) else v)
            for k, v in result.summary().items()
        },
        "outcomes": outcomes,
    }


def save_campaigns_json(
    path: Union[str, Path], results: Mapping[str, CampaignResult]
) -> None:
    """Write ``{strategy: campaign_record}`` to *path* as JSON."""
    if not results:
        raise ConfigurationError("results is empty")
    payload = {name: campaign_to_dict(result) for name, result in results.items()}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_campaigns_json(path: Union[str, Path]) -> dict[str, dict]:
    """Read back what :func:`save_campaigns_json` wrote (plain dicts).

    Returns the raw records rather than reconstructing
    :class:`CampaignResult` objects — the original inputs/images are
    not stored, so a lossless round-trip is impossible by design; the
    record carries everything reporting needs.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no campaign file at {path}")
    payload = json.loads(path.read_text())
    for name, record in payload.items():
        version = record.get("schema_version")
        if version not in _READABLE_VERSIONS:
            raise ConfigurationError(
                f"campaign {name!r} has schema version {version}, "
                f"expected one of {_READABLE_VERSIONS}"
            )
    return payload
