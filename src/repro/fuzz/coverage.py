"""Coverage tracking in hypervector space (TensorFuzz-style extension).

The paper positions HDTest against coverage-guided fuzzers — AFL for
software, TensorFuzz (its ref. [26]) for DNNs, which treats an input as
novel when its activation vector is far from every previously seen one
(approximate nearest neighbour).  HDC gives that idea an unusually
clean home: the query hypervector *is* the model's internal
representation, so coverage can be measured directly in HV space.

:class:`CoverageMap` discretises HV space with random-hyperplane
signatures (SimHash-style LSH): a query HV is projected onto ``n_bits``
fixed random hyperplanes and the sign pattern is its *cell*.  A seed
covers new behaviour when it lands in an unseen cell.

:class:`CoverageGuidedFitness` mixes the paper's distance-guided score
with a novelty bonus for cell-new seeds, giving HDTest an optional
coverage-guided mode that is benchmarked against the paper's pure
distance guidance in ``benchmarks/bench_ablation_coverage.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.fuzz.fitness import DistanceGuidedFitness, FitnessFunction
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["CoverageMap", "CoverageGuidedFitness"]


class CoverageMap:
    """Random-hyperplane (SimHash) coverage cells over hypervectors.

    Parameters
    ----------
    dimension:
        Hypervector dimensionality of incoming queries.
    n_bits:
        Number of hyperplanes = bits per cell signature.  ``2**n_bits``
        cells partition HV space; 16–24 bits is a practical range (the
        map stores only *visited* cells, never the full lattice).
    rng:
        Seed/generator fixing the hyperplanes.
    """

    def __init__(self, dimension: int, n_bits: int = 16, *, rng: RngLike = None) -> None:
        self._dimension = check_positive_int(dimension, "dimension")
        self._n_bits = check_positive_int(n_bits, "n_bits")
        if self._n_bits > 63:
            raise ConfigurationError(f"n_bits must be <= 63, got {n_bits}")
        generator = ensure_rng(rng)
        # Gaussian hyperplanes: sign(H @ hv) is the classic SimHash.
        self._hyperplanes = generator.normal(size=(self._n_bits, self._dimension))
        self._weights = (1 << np.arange(self._n_bits, dtype=np.uint64))
        self._visited: set[int] = set()

    # -- introspection ---------------------------------------------------
    @property
    def n_bits(self) -> int:
        """Bits per cell signature."""
        return self._n_bits

    @property
    def n_cells_visited(self) -> int:
        """Number of distinct cells seen so far."""
        return len(self._visited)

    @property
    def total_cells(self) -> int:
        """Size of the cell lattice (``2**n_bits``)."""
        return 1 << self._n_bits

    def coverage_fraction(self) -> float:
        """Visited cells / total cells (tiny by design for large maps)."""
        return self.n_cells_visited / self.total_cells

    # -- operations ------------------------------------------------------
    def signatures(self, query_hvs: np.ndarray) -> np.ndarray:
        """Cell id (uint64) per query HV."""
        arr = np.asarray(query_hvs, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self._dimension:
            raise DimensionMismatchError(
                f"queries must be (n, {self._dimension}), got shape {arr.shape}"
            )
        projections = arr @ self._hyperplanes.T  # (n, n_bits)
        bits = (projections >= 0).astype(np.uint64)
        return bits @ self._weights

    def observe(self, query_hvs: np.ndarray) -> np.ndarray:
        """Record queries; returns a boolean mask of *newly covered* ones.

        A True entry means that query landed in a cell never seen before
        this call (duplicates within the same batch count once — the
        first occurrence is the novel one).
        """
        sigs = self.signatures(query_hvs)
        novel = np.zeros(sigs.shape[0], dtype=bool)
        for i, sig in enumerate(sigs):
            key = int(sig)
            if key not in self._visited:
                self._visited.add(key)
                novel[i] = True
        return novel

    def is_covered(self, query_hvs: np.ndarray) -> np.ndarray:
        """Boolean mask: which queries fall in already-visited cells."""
        sigs = self.signatures(query_hvs)
        return np.asarray([int(s) in self._visited for s in sigs], dtype=bool)

    def reset(self) -> None:
        """Forget all visited cells (hyperplanes are kept)."""
        self._visited.clear()

    def __repr__(self) -> str:
        return (
            f"CoverageMap(n_bits={self._n_bits}, "
            f"visited={self.n_cells_visited}/{self.total_cells})"
        )


class CoverageGuidedFitness(FitnessFunction):
    """Distance-guided fitness plus a novelty bonus for new cells.

    ``score = (1 − Cosim(AM[y], HDC(seed))) + novelty_bonus·[new cell]``

    With ``novelty_bonus = 0`` this degrades exactly to the paper's
    fitness; large bonuses approach pure coverage-guided fuzzing.

    Parameters
    ----------
    coverage:
        The (stateful) coverage map; shared across inputs if the caller
        wants campaign-wide coverage, or fresh per input for per-seed
        novelty.
    novelty_bonus:
        Additive score for seeds that land in unvisited cells.  The
        distance term lies in [0, 2], so a bonus of ~0.5 makes novelty
        decisive only between seeds of similar distance.
    bipolar_dimension:
        Required when the queries are packed *bipolar* sign words
        (uint64), so the distance term uses the sign-bit cosine — the
        same contract as
        :class:`~repro.fuzz.fitness.DistanceGuidedFitness` (the fuzzing
        engines reject a mismatch at construction).  The coverage map
        must then be sized for the packed word count, not ``D``.
    """

    guided = True

    def __init__(
        self,
        coverage: CoverageMap,
        novelty_bonus: float = 0.5,
        *,
        bipolar_dimension: Optional[int] = None,
    ) -> None:
        if novelty_bonus < 0:
            raise ConfigurationError(
                f"novelty_bonus must be >= 0, got {novelty_bonus}"
            )
        self._coverage = coverage
        self._novelty_bonus = float(novelty_bonus)
        self._bipolar_dimension = bipolar_dimension
        self._distance = DistanceGuidedFitness(bipolar_dimension=bipolar_dimension)

    @property
    def coverage(self) -> CoverageMap:
        """The underlying coverage map (inspect ``n_cells_visited``)."""
        return self._coverage

    def scores(
        self, reference_hv: np.ndarray, query_hvs: np.ndarray, *, rng: RngLike = None
    ) -> np.ndarray:
        base = self._distance.scores(reference_hv, query_hvs, rng=rng)
        novel = self._coverage.observe(query_hvs)
        return base + self._novelty_bonus * novel.astype(np.float64)

    def __repr__(self) -> str:
        return (
            f"CoverageGuidedFitness(novelty_bonus={self._novelty_bonus}, "
            f"coverage={self._coverage!r})"
        )
