"""Seed-fitness functions (Sec. IV, distance-guided fuzzing).

The paper: "the fitness of seeds are defined as
``fitness = 1 − Cosim(AM[y], HDC(seed))`` … Higher fitness means lower
similarity between the HV of the seed and the original input image's
HV, indicating higher possibility to generate an adversarial image."

:class:`DistanceGuidedFitness` is that function.  :class:`RandomFitness`
replaces it with noise, turning top-N survival into uniform survival —
the *unguided* baseline against which the paper measures its 12 %
speed-up.  Both operate on already-encoded query HVs so the fuzzing
loop encodes each child exactly once (shared between oracle and
fitness).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.hdc.similarity import cosine_matrix
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["FitnessFunction", "DistanceGuidedFitness", "RandomFitness", "MarginFitness"]


class FitnessFunction(ABC):
    """Scores candidate seeds; higher scores survive (Alg. 1, Line 14)."""

    #: whether the fuzzer should report this as guided (for logs/reports).
    guided: bool = True

    @abstractmethod
    def scores(self, reference_hv: np.ndarray, query_hvs: np.ndarray) -> np.ndarray:
        """Fitness of each query HV given the reference class HV.

        Parameters
        ----------
        reference_hv:
            ``AM[y]`` — the class hypervector of the model's prediction
            on the *original* input.
        query_hvs:
            ``(n, D)`` encoded candidate seeds.
        """


class DistanceGuidedFitness(FitnessFunction):
    """The paper's fitness: ``1 − Cosim(AM[y], HDC(seed))``."""

    guided = True

    def scores(self, reference_hv: np.ndarray, query_hvs: np.ndarray) -> np.ndarray:
        sims = cosine_matrix(query_hvs, reference_hv[None, :])[:, 0]
        return 1.0 - sims

    def __repr__(self) -> str:
        return "DistanceGuidedFitness()"


class RandomFitness(FitnessFunction):
    """Unguided baseline: survival becomes a uniform lottery.

    Used to reproduce Sec. IV's claim that guided testing "can generate
    adversarial inputs faster than unguided testing by 12 % on average".
    """

    guided = False

    def __init__(self, rng: RngLike = None) -> None:
        self._rng = ensure_rng(rng)

    def scores(self, reference_hv: np.ndarray, query_hvs: np.ndarray) -> np.ndarray:
        return self._rng.random(size=np.asarray(query_hvs).shape[0])

    def __repr__(self) -> str:
        return "RandomFitness()"


class MarginFitness(FitnessFunction):
    """Extension: reward shrinking the (reference − best-other) margin.

    A sharper guidance signal than raw reference distance: a seed that
    is far from ``AM[y]`` but equally far from every other class is less
    promising than one that is *closing in on a specific other class*.
    Requires the full AM, so it takes the class HVs at construction.
    Benchmarked in ``benchmarks/bench_ablation_fitness.py``.
    """

    guided = True

    def __init__(self, class_hvs: np.ndarray, reference_label: int) -> None:
        self._class_hvs = np.asarray(class_hvs)
        self._reference_label = int(reference_label)

    def scores(self, reference_hv: np.ndarray, query_hvs: np.ndarray) -> np.ndarray:
        sims = cosine_matrix(query_hvs, self._class_hvs)
        ref = sims[:, self._reference_label].copy()
        sims[:, self._reference_label] = -np.inf
        best_other = sims.max(axis=1)
        # Negative margin = already adversarial; monotone increasing as
        # the query approaches the decision boundary.
        return best_other - ref

    def __repr__(self) -> str:
        return f"MarginFitness(reference_label={self._reference_label})"
