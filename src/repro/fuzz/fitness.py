"""Seed-fitness functions (Sec. IV, distance-guided fuzzing).

The paper: "the fitness of seeds are defined as
``fitness = 1 − Cosim(AM[y], HDC(seed))`` … Higher fitness means lower
similarity between the HV of the seed and the original input image's
HV, indicating higher possibility to generate an adversarial image."

:class:`DistanceGuidedFitness` is that function.  :class:`RandomFitness`
replaces it with noise, turning top-N survival into uniform survival —
the *unguided* baseline against which the paper measures its 12 %
speed-up.  Both operate on already-encoded query HVs so the fuzzing
loop encodes each child exactly once (shared between oracle and
fitness).

Randomness discipline
---------------------
``scores`` takes a keyword-only *rng*: the fuzzing engines pass each
input's own child generator, so a stochastic fitness (the unguided
baseline) draws from a **per-input stream**.  That is what makes
unguided outcomes — like guided ones — invariant to the executor,
``batch_size``, and ``n_workers`` under the shared RNG discipline
(one spawned generator per input).  Deterministic fitnesses ignore the
argument; :class:`RandomFitness` falls back to its constructor stream
when called without one (standalone use).

Packed hypervectors
-------------------
Query and reference HVs may be *bit-packed* uint64 words (see
:mod:`repro.hdc.backends`).  The cosine-based fitnesses detect that
dtype and score through the popcount kernels; the resulting floats are
bit-identical to scoring the dense vectors, so packed and unpacked
campaigns select the same survivors.  Packed **binary** {0, 1} words
and packed **bipolar** sign words share the uint64 dtype, so the dtype
alone cannot pick the cosine: the fitnesses default to the binary
kernel and take a keyword-only ``bipolar_dimension`` that switches the
uint64 path to the sign-bit cosine
(:func:`repro.hdc.backends.packed.cosine_matrix_packed_bipolar`).  The
fuzzing engines set it automatically from the model's
``packed_alphabet`` marker via :func:`packed_bipolar_dimension`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

import numpy as np

from repro.hdc.similarity import cosine_matrix
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "FitnessFunction",
    "DistanceGuidedFitness",
    "RandomFitness",
    "MarginFitness",
    "packed_bipolar_dimension",
]


def packed_bipolar_dimension(model: Any) -> Optional[int]:
    """``D`` when *model*'s grey-box HVs are packed bipolar sign words.

    Duck-typed on the ``packed_alphabet`` class marker the packed
    classifiers carry (``"bipolar"`` /
    :class:`~repro.hdc.backends.bipolar.PackedBipolarHDCClassifier`).
    Returns ``None`` for every other model — dense families and the
    packed binary family, whose uint64 HVs the fitnesses already score
    correctly by dtype.  Pass the result as the cosine fitnesses'
    ``bipolar_dimension``; the fuzzing engines do so when building
    their default fitness.
    """
    if getattr(model, "packed_alphabet", None) == "bipolar":
        return int(model.dimension)
    return None


def _cosine_matrix_any(
    queries: np.ndarray,
    references: np.ndarray,
    *,
    bipolar_dimension: Optional[int] = None,
) -> np.ndarray:
    """Cosine matrix for dense HVs or packed uint64 words (exact).

    uint64 operands are binary {0, 1} words unless *bipolar_dimension*
    is set, in which case they are sign words of that logical dimension
    and the bipolar popcount cosine applies.
    """
    q = np.asarray(queries)
    r = np.asarray(references)
    if q.dtype == np.uint64 and r.dtype == np.uint64:
        if bipolar_dimension is not None:
            from repro.hdc.backends.packed import cosine_matrix_packed_bipolar

            return cosine_matrix_packed_bipolar(q, r, bipolar_dimension)
        from repro.hdc.backends.packed import cosine_matrix_packed

        return cosine_matrix_packed(q, r)
    return cosine_matrix(q, r)


class FitnessFunction(ABC):
    """Scores candidate seeds; higher scores survive (Alg. 1, Line 14)."""

    #: whether the fuzzer should report this as guided (for logs/reports).
    guided: bool = True

    @abstractmethod
    def scores(
        self,
        reference_hv: np.ndarray,
        query_hvs: np.ndarray,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Fitness of each query HV given the reference class HV.

        Parameters
        ----------
        reference_hv:
            ``AM[y]`` — the class hypervector of the model's prediction
            on the *original* input (packed or unpacked).
        query_hvs:
            ``(n, D)`` encoded candidate seeds (``(n, D//64)`` packed).
        rng:
            Per-input randomness stream supplied by the fuzzing
            engines.  Deterministic fitnesses ignore it.
        """


class DistanceGuidedFitness(FitnessFunction):
    """The paper's fitness: ``1 − Cosim(AM[y], HDC(seed))``.

    Parameters
    ----------
    bipolar_dimension:
        Set when the HVs handed to :meth:`scores` are packed *bipolar*
        sign words (uint64) of this logical dimension, so the sign-bit
        cosine kernel applies; leave ``None`` for dense HVs and packed
        binary words.  Use
        :func:`packed_bipolar_dimension` to derive it from a model.
    """

    guided = True

    def __init__(self, *, bipolar_dimension: Optional[int] = None) -> None:
        self._bipolar_dimension = bipolar_dimension

    def scores(
        self,
        reference_hv: np.ndarray,
        query_hvs: np.ndarray,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        sims = _cosine_matrix_any(
            query_hvs,
            np.asarray(reference_hv)[None, :],
            bipolar_dimension=self._bipolar_dimension,
        )[:, 0]
        return 1.0 - sims

    def __repr__(self) -> str:
        if self._bipolar_dimension is None:
            return "DistanceGuidedFitness()"
        return f"DistanceGuidedFitness(bipolar_dimension={self._bipolar_dimension})"


class RandomFitness(FitnessFunction):
    """Unguided baseline: survival becomes a uniform lottery.

    Used to reproduce Sec. IV's claim that guided testing "can generate
    adversarial inputs faster than unguided testing by 12 % on average".
    Draws from the *rng* handed to :meth:`scores` when there is one —
    the engines pass each input's own generator, giving the unguided
    baseline the same per-input streams (and therefore the same
    executor/batch-size invariance) as guided runs — and from the
    constructor stream otherwise.
    """

    guided = False

    def __init__(self, rng: RngLike = None) -> None:
        self._rng = ensure_rng(rng)

    def scores(
        self,
        reference_hv: np.ndarray,
        query_hvs: np.ndarray,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        generator = self._rng if rng is None else ensure_rng(rng)
        return generator.random(size=np.asarray(query_hvs).shape[0])

    def __repr__(self) -> str:
        return "RandomFitness()"


class MarginFitness(FitnessFunction):
    """Extension: reward shrinking the (reference − best-other) margin.

    A sharper guidance signal than raw reference distance: a seed that
    is far from ``AM[y]`` but equally far from every other class is less
    promising than one that is *closing in on a specific other class*.
    Requires the full AM, so it takes the class HVs at construction
    (packed or unpacked; pass *bipolar_dimension* for packed bipolar
    sign words, as for :class:`DistanceGuidedFitness`).  Benchmarked in
    ``benchmarks/bench_ablation_fitness.py``.
    """

    guided = True

    def __init__(
        self,
        class_hvs: np.ndarray,
        reference_label: int,
        *,
        bipolar_dimension: Optional[int] = None,
    ) -> None:
        self._class_hvs = np.asarray(class_hvs)
        self._reference_label = int(reference_label)
        self._bipolar_dimension = bipolar_dimension

    def scores(
        self,
        reference_hv: np.ndarray,
        query_hvs: np.ndarray,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        sims = _cosine_matrix_any(
            query_hvs, self._class_hvs, bipolar_dimension=self._bipolar_dimension
        )
        ref = sims[:, self._reference_label].copy()
        sims[:, self._reference_label] = -np.inf
        best_other = sims.max(axis=1)
        # Negative margin = already adversarial; monotone increasing as
        # the query approaches the decision boundary.
        return best_other - ref

    def __repr__(self) -> str:
        return f"MarginFitness(reference_label={self._reference_label})"
