"""Seed-fitness functions (Sec. IV, distance-guided fuzzing).

The paper: "the fitness of seeds are defined as
``fitness = 1 − Cosim(AM[y], HDC(seed))`` … Higher fitness means lower
similarity between the HV of the seed and the original input image's
HV, indicating higher possibility to generate an adversarial image."

:class:`DistanceGuidedFitness` is that function.  :class:`RandomFitness`
replaces it with noise, turning top-N survival into uniform survival —
the *unguided* baseline against which the paper measures its 12 %
speed-up.  Both operate on already-encoded query HVs so the fuzzing
loop encodes each child exactly once (shared between oracle and
fitness).

Randomness discipline
---------------------
``scores`` takes a keyword-only *rng*: the fuzzing engines pass each
input's own child generator, so a stochastic fitness (the unguided
baseline) draws from a **per-input stream**.  That is what makes
unguided outcomes — like guided ones — invariant to the executor,
``batch_size``, and ``n_workers`` under the shared RNG discipline
(one spawned generator per input).  Deterministic fitnesses ignore the
argument; :class:`RandomFitness` falls back to its constructor stream
when called without one (standalone use).

Packed hypervectors
-------------------
Query and reference HVs may be *bit-packed* uint64 words (see
:mod:`repro.hdc.backends`).  The cosine-based fitnesses detect that
dtype and score through the popcount kernels; the resulting floats are
bit-identical to scoring the dense vectors, so packed and unpacked
campaigns select the same survivors.  Packed **binary** {0, 1} words
and packed **bipolar** sign words share the uint64 dtype, so the dtype
alone cannot pick the cosine: the fitnesses default to the binary
kernel and take a keyword-only ``bipolar_dimension`` that switches the
uint64 path to the sign-bit cosine
(:func:`repro.hdc.backends.packed.cosine_matrix_packed_bipolar`).  The
fuzzing engines set it automatically from the model's
``packed_alphabet`` marker via :func:`packed_bipolar_dimension`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.targets import TargetPredictions, vote_counts
from repro.hdc.similarity import cosine_matrix
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "FitnessFunction",
    "DistanceGuidedFitness",
    "RandomFitness",
    "MarginFitness",
    "AgreementMarginFitness",
    "packed_bipolar_dimension",
]


def packed_bipolar_dimension(model: Any) -> Optional[int]:
    """``D`` when *model*'s grey-box HVs are packed bipolar sign words.

    Duck-typed on the ``packed_alphabet`` class marker the packed
    classifiers carry (``"bipolar"`` /
    :class:`~repro.hdc.backends.bipolar.PackedBipolarHDCClassifier`).
    Returns ``None`` for every other model — dense families and the
    packed binary family, whose uint64 HVs the fitnesses already score
    correctly by dtype.  Pass the result as the cosine fitnesses'
    ``bipolar_dimension``; the fuzzing engines do so when building
    their default fitness.
    """
    if getattr(model, "packed_alphabet", None) == "bipolar":
        return int(model.dimension)
    return None


def _cosine_matrix_any(
    queries: np.ndarray,
    references: np.ndarray,
    *,
    bipolar_dimension: Optional[int] = None,
) -> np.ndarray:
    """Cosine matrix for dense HVs or packed uint64 words (exact).

    uint64 operands are binary {0, 1} words unless *bipolar_dimension*
    is set, in which case they are sign words of that logical dimension
    and the bipolar popcount cosine applies.
    """
    q = np.asarray(queries)
    r = np.asarray(references)
    if q.dtype == np.uint64 and r.dtype == np.uint64:
        if bipolar_dimension is not None:
            from repro.hdc.backends.packed import cosine_matrix_packed_bipolar

            return cosine_matrix_packed_bipolar(q, r, bipolar_dimension)
        from repro.hdc.backends.packed import cosine_matrix_packed

        return cosine_matrix_packed(q, r)
    return cosine_matrix(q, r)


class FitnessFunction(ABC):
    """Scores candidate seeds; higher scores survive (Alg. 1, Line 14)."""

    #: whether the fuzzer should report this as guided (for logs/reports).
    guided: bool = True

    #: whether :meth:`scores_ensemble` wants per-class similarity blocks
    #: in addition to member labels (the engines skip computing them
    #: otherwise).
    needs_similarities: bool = False

    @abstractmethod
    def scores(
        self,
        reference_hv: np.ndarray,
        query_hvs: np.ndarray,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Fitness of each query HV given the reference class HV.

        Parameters
        ----------
        reference_hv:
            ``AM[y]`` — the class hypervector of the model's prediction
            on the *original* input (packed or unpacked).
        query_hvs:
            ``(n, D)`` encoded candidate seeds (``(n, D//64)`` packed).
        rng:
            Per-input randomness stream supplied by the fuzzing
            engines.  Deterministic fitnesses ignore it.
        """

    def scores_ensemble(
        self,
        predictions: TargetPredictions,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Fitness of each child of an ensemble target.

        *predictions* carries the ``(K, n)`` member labels (and, when
        :attr:`needs_similarities` is set, the ``(K, n, C)`` similarity
        blocks) the lock-step engines computed for the iteration's
        children.  Only ensemble-aware fitnesses implement this; the
        engines reject a K > 1 target paired with one that does not.
        """
        raise ConfigurationError(
            f"{type(self).__name__} cannot score ensemble predictions; "
            "use an ensemble-aware fitness (AgreementMarginFitness, "
            "RandomFitness) with ModelEnsembleTarget"
        )


class DistanceGuidedFitness(FitnessFunction):
    """The paper's fitness: ``1 − Cosim(AM[y], HDC(seed))``.

    Parameters
    ----------
    bipolar_dimension:
        Set when the HVs handed to :meth:`scores` are packed *bipolar*
        sign words (uint64) of this logical dimension, so the sign-bit
        cosine kernel applies; leave ``None`` for dense HVs and packed
        binary words.  Use
        :func:`packed_bipolar_dimension` to derive it from a model.
    """

    guided = True

    def __init__(self, *, bipolar_dimension: Optional[int] = None) -> None:
        self._bipolar_dimension = bipolar_dimension

    def scores(
        self,
        reference_hv: np.ndarray,
        query_hvs: np.ndarray,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        sims = _cosine_matrix_any(
            query_hvs,
            np.asarray(reference_hv)[None, :],
            bipolar_dimension=self._bipolar_dimension,
        )[:, 0]
        return 1.0 - sims

    def __repr__(self) -> str:
        if self._bipolar_dimension is None:
            return "DistanceGuidedFitness()"
        return f"DistanceGuidedFitness(bipolar_dimension={self._bipolar_dimension})"


class RandomFitness(FitnessFunction):
    """Unguided baseline: survival becomes a uniform lottery.

    Used to reproduce Sec. IV's claim that guided testing "can generate
    adversarial inputs faster than unguided testing by 12 % on average".
    Draws from the *rng* handed to :meth:`scores` when there is one —
    the engines pass each input's own generator, giving the unguided
    baseline the same per-input streams (and therefore the same
    executor/batch-size invariance) as guided runs — and from the
    constructor stream otherwise.
    """

    guided = False

    def __init__(self, rng: RngLike = None) -> None:
        self._rng = ensure_rng(rng)

    def scores(
        self,
        reference_hv: np.ndarray,
        query_hvs: np.ndarray,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        generator = self._rng if rng is None else ensure_rng(rng)
        return generator.random(size=np.asarray(query_hvs).shape[0])

    def scores_ensemble(
        self,
        predictions: TargetPredictions,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Uniform survival for ensembles too (same per-input streams)."""
        generator = self._rng if rng is None else ensure_rng(rng)
        return generator.random(size=len(predictions))

    def __repr__(self) -> str:
        return "RandomFitness()"


class MarginFitness(FitnessFunction):
    """Extension: reward shrinking the (reference − best-other) margin.

    A sharper guidance signal than raw reference distance: a seed that
    is far from ``AM[y]`` but equally far from every other class is less
    promising than one that is *closing in on a specific other class*.
    Requires the full AM, so it takes the class HVs at construction
    (packed or unpacked; pass *bipolar_dimension* for packed bipolar
    sign words, as for :class:`DistanceGuidedFitness`).  Benchmarked in
    ``benchmarks/bench_ablation_fitness.py``.
    """

    guided = True

    def __init__(
        self,
        class_hvs: np.ndarray,
        reference_label: int,
        *,
        bipolar_dimension: Optional[int] = None,
    ) -> None:
        self._class_hvs = np.asarray(class_hvs)
        self._reference_label = int(reference_label)
        self._bipolar_dimension = bipolar_dimension

    def scores(
        self,
        reference_hv: np.ndarray,
        query_hvs: np.ndarray,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        sims = _cosine_matrix_any(
            query_hvs, self._class_hvs, bipolar_dimension=self._bipolar_dimension
        )
        ref = sims[:, self._reference_label].copy()
        sims[:, self._reference_label] = -np.inf
        best_other = sims.max(axis=1)
        # Negative margin = already adversarial; monotone increasing as
        # the query approaches the decision boundary.
        return best_other - ref

    def __repr__(self) -> str:
        return f"MarginFitness(reference_label={self._reference_label})"


class AgreementMarginFitness(FitnessFunction):
    """Discrepancy-guided survival: shrink the ensemble's vote margin.

    HDXplore's guidance signal, adapted to Alg. 1's top-N survival:
    children on which the ensemble's vote is *closest to splitting* are
    the most promising parents of a cross-model discrepancy.  The score
    has two parts:

    * **vote margin** — with ``c₁ ≥ c₂`` the two largest per-class vote
      counts over the K members, the primary term is
      ``1 − (c₁ − c₂) / K``: unanimous children score 0, children one
      defection from a split score higher, already-split children
      highest (the oracle retires those before fitness runs).
    * **similarity tie-break** — vote counts are integers, so whole
      cohorts of children tie.  Within a tie the child whose members
      are *least certain* wins: the mean over members of the top-1 −
      top-2 similarity margin, mapped to ``[0, 1]`` and weighted below
      one vote step so it can only order children with equal votes.

    Parameters
    ----------
    similarity_weight:
        Weight of the tie-break term.  ``None`` (default) resolves to
        ``0.5 / K`` at scoring time — strictly below the ``1 / K``
        quantum of the vote term.  Pass ``0.0`` for votes only.
    """

    guided = True
    needs_similarities = True

    def __init__(self, *, similarity_weight: Optional[float] = None) -> None:
        if similarity_weight is not None and similarity_weight < 0:
            raise ConfigurationError(
                f"similarity_weight must be >= 0, got {similarity_weight}"
            )
        self._similarity_weight = similarity_weight

    def scores(
        self,
        reference_hv: np.ndarray,
        query_hvs: np.ndarray,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        raise ConfigurationError(
            "AgreementMarginFitness scores ensemble vote margins; it needs "
            "a ModelEnsembleTarget (see repro.fuzz.targets)"
        )

    def scores_ensemble(
        self,
        predictions: TargetPredictions,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        labels = predictions.labels
        k = labels.shape[0]
        n_classes = (
            predictions.similarities.shape[2]
            if predictions.similarities is not None
            else int(labels.max()) + 1
        )
        counts = np.sort(vote_counts(labels, n_classes), axis=1)
        top1 = counts[:, -1]
        top2 = counts[:, -2] if counts.shape[1] > 1 else np.zeros_like(top1)
        scores = 1.0 - (top1 - top2) / float(k)
        weight = (
            0.5 / k if self._similarity_weight is None else self._similarity_weight
        )
        if weight and predictions.similarities is not None:
            sims = np.sort(predictions.similarities, axis=2)
            member_margin = sims[:, :, -1] - (
                sims[:, :, -2] if sims.shape[2] > 1 else 0.0
            )
            # Cosine margins live in [0, 2]; halve into [0, 1] so the
            # weight bound (< one vote quantum) is honest.
            scores = scores + weight * (1.0 - member_margin.mean(axis=0) / 2.0)
        return scores

    def __repr__(self) -> str:
        if self._similarity_weight is None:
            return "AgreementMarginFitness()"
        return f"AgreementMarginFitness(similarity_weight={self._similarity_weight})"
