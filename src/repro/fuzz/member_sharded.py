"""Member-sharded ensemble execution: one persistent worker per member.

:class:`~repro.fuzz.executor.ProcessExecutor` shards campaigns by
*input*: every worker receives (and holds, and re-runs) all K ensemble
members, so per-worker memory and the one-off broadcast both scale with
K × workers.  This module shards by *member* instead — the ROADMAP's
"distributed differential testing" step 1, and the execution shape
FedDebug uses at federation scale: worker *m* owns exactly one
:class:`~repro.fuzz.targets.MemberShard` (the full member model for
independent-codebook ensembles; only the member's associative memory
for shared-codebook ones), the parent runs mutation / oracle / fitness /
pool survival, and each iteration exchanges one child block for K vote
rows.

Two execution modes, chosen by the target's shape:

* **Shared-codebook** (``n_encode_blocks == 1``) — the parent engine is
  the stock :class:`~repro.fuzz.batch.BatchedHDTest` running against a
  :class:`_VoteGatherTarget` proxy: encoding (delta or scratch, with
  the parent's dedupe caches) happens parent-side exactly as in
  lock-step, and only ``predict_hvs`` fans the encoded block out to the
  K AM-only workers.  Campaign outcomes are bit-identical to the
  in-process engines *by construction* — every decision runs the same
  code on the same arrays.
* **Independent codebooks** — :class:`MemberShardedHDTest` broadcasts
  raw child blocks; each worker delta- or scratch-encodes them through
  its own member's codebook (with its own per-input dedupe caches and
  per-member survivor side arrays, replaying the parent's survivor
  order) and replies with its label/similarity rows.  Stacking the rows
  in member order reproduces the lock-step
  :class:`~repro.fuzz.targets.TargetPredictions` exactly, so the
  parent-side oracle / fitness / survival decisions — and therefore
  campaign outcomes — again match the lock-step engines bit for bit
  (property-tested in ``tests/fuzz/test_member_sharded.py``).

Broadcasts ride the :mod:`repro.utils.shm` arena by default: per
iteration the pipes carry a ~100-byte segment handle plus the vote
arrays, instead of K pickled copies of the child block
(``transport="pickle"`` keeps the copying behaviour for comparison —
``benchmarks/bench_member_sharding.py`` measures the gap).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
import traceback
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz.batch import BatchedHDTest, _ActiveInput, _CachePool
from repro.fuzz.results import InputOutcome
from repro.fuzz.seeds import SeedPoolBatch
from repro.fuzz.targets import (
    MemberShard,
    PredictionTarget,
    TargetPredictions,
    _SingleDeltaSurface,
)
from repro.utils.cache import resolve_with_cache
from repro.utils.rng import ensure_rng, spawn
from repro.utils.shm import (
    ShmArena,
    ShmRef,
    attach_array,
    detach_all,
    payload_nbytes,
)

__all__ = ["MemberWorkerGroup", "MemberShardedHDTest", "create_member_engine"]

#: Seconds between liveness checks while waiting on a worker reply.
_GATHER_POLL_SECONDS = 1.0


def _payload_array(payload) -> np.ndarray:
    """A message payload (shm ref or pickled array) as an ndarray view."""
    if isinstance(payload, ShmRef):
        return attach_array(payload)
    return np.asarray(payload)


class _MemberSidePool:
    """One member's survivor side arrays (accumulators + levels).

    The worker-process mirror of :class:`~repro.fuzz.seeds.SeedPoolBatch`'s
    side blocks: same shapes, same ``[i, :k] = staged[order]`` write the
    parent performs — except the *order* arrives from the parent (who
    computed it once from the fitness scores), so survivor selection is
    identical in every process without shipping scores around.
    """

    __slots__ = ("_accs", "_levels", "_counts")

    def __init__(self, accs0: np.ndarray, levels0: np.ndarray, top_n: int) -> None:
        n = accs0.shape[0]
        self._accs = np.zeros((n, top_n) + accs0.shape[1:], accs0.dtype)
        self._accs[:, 0] = accs0
        self._levels = np.zeros((n, top_n) + levels0.shape[1:], levels0.dtype)
        self._levels[:, 0] = levels0
        self._counts = np.ones(n, dtype=np.int64)

    def accumulators(self, i: int) -> np.ndarray:
        return self._accs[i, : self._counts[i]]

    def levels(self, i: int) -> np.ndarray:
        return self._levels[i, : self._counts[i]]

    def commit(self, i: int, order: np.ndarray, accs, levels) -> None:
        k = order.shape[0]
        self._accs[i, :k] = accs[order]
        self._levels[i, :k] = levels[order]
        self._counts[i] = k


class _WorkerRun:
    """One fuzz_outcomes call's worth of state inside a member worker."""

    def __init__(self, shard, handle, config, originals, delta_on, caches):
        # Copy: shm scratch slots are rewritten by the next broadcast,
        # and the reference encode below must outlive this message.
        originals = np.array(originals)
        self.shard = shard
        self.config = config
        self.caches = caches
        n = originals.shape[0]
        self.cache_keys = [row.tobytes() for row in originals]
        # The lock-step engine's per-input capacity share, verbatim —
        # identical capacities mean identical LRU hit/miss/eviction
        # sequences, which keeps encode counters comparable.
        self.capacity = min(
            config.cache_max_entries, max(32, config.cache_max_entries // n)
        )
        caches.reserve(n, self.capacity)
        self.surface = None
        self.side: Optional[_MemberSidePool] = None
        self.staged: dict[int, tuple] = {}
        self.n_encoded = 0
        t0 = time.perf_counter()
        if delta_on and handle is not None:
            self.surface = _SingleDeltaSurface(handle)
            accs0, levels0 = self.surface.seed_side_data(originals)
            self.side = _MemberSidePool(accs0, levels0, config.top_n)
            hv = self.surface.hvs_from_accumulators(accs0)[0]
        else:
            hv = shard.encode_block(originals)
        encode_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        labels, sims = shard.predict_block(hv)
        self.seed_reply = (labels, sims, n, encode_s, time.perf_counter() - t0)

    def predict(self, children, metas, with_sims) -> tuple:
        """Encode + query one iteration's child block → the reply tail."""
        self.staged.clear()
        self.n_encoded = 0
        t0 = time.perf_counter()
        blocks = []
        offset = 0
        for index, parent_ids, count in metas:
            chunk = children[offset : offset + count]
            offset += count
            if self.surface is not None:
                blocks.append(self._encode_delta(index, chunk, np.asarray(parent_ids)))
            else:
                blocks.append(self._encode_scratch(index, chunk))
        hvs = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
        encode_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        labels, sims = self.shard.predict_block(hvs, with_similarities=with_sims)
        return (labels, sims, self.n_encoded, encode_s, time.perf_counter() - t0)

    def _encode_delta(self, index, chunk, parent_ids) -> np.ndarray:
        levels = self.surface.child_levels(chunk)
        parent_accs_all = self.side.accumulators(index)
        parent_levels_all = self.side.levels(index)

        def delta_missing(positions: list) -> np.ndarray:
            self.n_encoded += len(positions)
            sel = parent_ids[positions]
            return self.surface.accumulate_delta(
                levels[positions], parent_levels_all[sel], parent_accs_all[sel]
            )

        if self.config.dedupe:
            keys = [chunk[j].tobytes() for j in range(len(chunk))]
            cache = self.caches.get(self.cache_keys[index], self.capacity)
            accs = np.stack(resolve_with_cache(cache, keys, delta_missing))
        else:
            accs = delta_missing(list(range(len(chunk))))
        self.staged[index] = (accs, levels)
        return self.surface.hvs_from_accumulators(accs)[0]

    def _encode_scratch(self, index, chunk) -> np.ndarray:
        if not self.config.dedupe:
            self.n_encoded += len(chunk)
            return self.shard.encode_block(np.array(chunk))

        def encode_missing(positions: list):
            self.n_encoded += len(positions)
            block = self.shard.encode_block(np.stack([chunk[p] for p in positions]))
            return [block[j] for j in range(len(positions))]

        keys = [chunk[j].tobytes() for j in range(len(chunk))]
        cache = self.caches.get(self.cache_keys[index], self.capacity)
        return np.stack(resolve_with_cache(cache, keys, encode_missing))

    def commit(self, orders) -> None:
        if self.side is None:
            return
        for index, order in orders:
            entry = self.staged.get(index)
            if entry is not None:
                self.side.commit(int(index), np.asarray(order), *entry)


def _member_worker_main(shard, domain, config, request_q, reply_q) -> None:
    """Worker process main loop: serve one member until told to stop.

    The worker owns its member's compute state for the whole group
    lifetime — across runs and waves — so its content-keyed dedupe
    caches stay warm exactly like a reused process-pool engine's.
    Exceptions are shipped back as ``("error", member, traceback)``
    replies instead of killing the process, so one failed request
    surfaces in the parent as a debuggable error.
    """
    handle = None
    if shard.encodes_locally and domain is not None:
        handle = domain.delta_encoder(shard.payload)
    caches = _CachePool()
    run: Optional[_WorkerRun] = None
    while True:
        msg = request_q.get()
        op = msg[0]
        if op == "stop":
            break
        try:
            if op == "seed":
                run = _WorkerRun(
                    shard, handle, config, _payload_array(msg[1]), bool(msg[2]), caches
                )
                reply_q.put(("seed", shard.member_index) + run.seed_reply)
            elif op == "predict":
                reply_q.put(
                    ("predict", shard.member_index)
                    + run.predict(_payload_array(msg[1]), msg[2], msg[3])
                )
            elif op == "predict_hv":
                t0 = time.perf_counter()
                labels, sims = shard.predict_block(
                    _payload_array(msg[1]), with_similarities=msg[2]
                )
                reply_q.put(
                    ("predict_hv", shard.member_index, labels, sims, 0, 0.0,
                     time.perf_counter() - t0)
                )
            elif op == "commit":
                if run is not None:
                    run.commit(msg[1])
            else:
                raise FuzzingError(f"unknown member-worker op {op!r}")
        except BaseException:
            reply_q.put(("error", shard.member_index, traceback.format_exc()))
    detach_all()


class MemberWorkerGroup:
    """K persistent member workers with per-worker request/reply queues.

    Unlike a :class:`multiprocessing.Pool`, requests must be *pinned*:
    worker *m* holds member *m*'s state (model, side arrays, caches), so
    the group keeps one request queue per worker and gathers replies in
    member order — workers compute concurrently, the parent just reads
    the results as they land.

    Parameters
    ----------
    shards:
        One :class:`~repro.fuzz.targets.MemberShard` per member, in
        member order (``target.member_shards()``).
    domain:
        The resolved :class:`~repro.fuzz.domains.FuzzDomain` (workers
        derive their member's delta encoder from it).
    config:
        The resolved :class:`~repro.fuzz.fuzzer.HDTestConfig` (workers
        size their dedupe caches and side pools from it).
    transport:
        ``"shm"`` (default) broadcasts arrays through a
        :class:`~repro.utils.shm.ShmArena`; ``"pickle"`` ships them
        through the queues.  Falls back to pickle automatically when
        shared memory is unavailable.
    """

    def __init__(
        self,
        shards: Sequence[MemberShard],
        domain: Any,
        config: Any,
        *,
        transport: str = "shm",
    ) -> None:
        if len(shards) < 2:
            raise ConfigurationError(
                "member sharding needs an ensemble of >= 2 members"
            )
        if transport not in ("shm", "pickle"):
            raise ConfigurationError(
                f"transport must be 'shm' or 'pickle', got {transport!r}"
            )
        self._shards = tuple(shards)
        self._arena: Optional[ShmArena] = None
        if transport == "shm":
            try:
                self._arena = ShmArena()
                self._arena.scratch_write("probe", np.zeros(8, dtype=np.uint8))
            except OSError:  # pragma: no cover - no /dev/shm on this host
                self._arena = None
                transport = "pickle"
        self.transport = transport
        ctx = mp.get_context()
        self._workers: list[tuple] = []
        for shard in self._shards:
            request_q: Any = ctx.Queue()
            reply_q: Any = ctx.Queue()
            process = ctx.Process(
                target=_member_worker_main,
                args=(shard, domain, config, request_q, reply_q),
                daemon=True,
            )
            process.start()
            self._workers.append((process, request_q, reply_q))
        self._closed = False
        self.reset_stats()

    # -- introspection -------------------------------------------------------
    @property
    def n_members(self) -> int:
        return len(self._workers)

    @property
    def encodes_locally(self) -> bool:
        return self._shards[0].encodes_locally

    @property
    def alive(self) -> bool:
        return not self._closed and all(w[0].is_alive() for w in self._workers)

    def worker_exitcodes(self) -> list[Optional[int]]:
        """Exit codes after :meth:`close` (all 0 ⇔ graceful shutdown)."""
        return [w[0].exitcode for w in self._workers]

    # -- broadcast side ------------------------------------------------------
    def _payload(self, key: str, array: np.ndarray):
        if self._arena is not None:
            return self._arena.scratch_write(key, array)
        return np.ascontiguousarray(array)

    def _send(self, msg: tuple) -> int:
        if self._closed:
            raise FuzzingError("member worker group is closed")
        nbytes = payload_nbytes(msg) * len(self._workers)
        for _, request_q, _ in self._workers:
            request_q.put(msg)
        self._stats["broadcast_bytes"] += nbytes
        return nbytes

    def seed(self, originals: np.ndarray, *, delta_on: bool) -> int:
        """Broadcast the run's stacked originals (reference encode)."""
        return self._send(("seed", self._payload("originals", originals), delta_on))

    def predict(self, children: np.ndarray, metas, *, with_sims: bool) -> int:
        """Broadcast one iteration's concatenated child block."""
        return self._send(
            ("predict", self._payload("children", children), tuple(metas), with_sims)
        )

    def predict_hv(self, hvs: np.ndarray, *, with_sims: bool) -> int:
        """Broadcast an encoded hypervector block (shared-codebook mode)."""
        return self._send(("predict_hv", self._payload("hvs", hvs), with_sims))

    def commit(self, orders) -> int:
        """Broadcast the survivor order of each updated input (no reply)."""
        return self._send(("commit", tuple(orders)))

    def pool_allocator(self):
        """Shm-backed allocator for the parent's seed pool, or ``None``.

        Each engine run gets a fresh allocator whose rotating ``pool.*``
        slots replace the previous run's segments, so per-chunk pool
        rebuilds never accumulate ``/dev/shm`` entries.
        """
        if self._arena is None:
            return None
        return self._arena.allocator("pool")

    # -- gather side ---------------------------------------------------------
    def _get_reply(self, worker: tuple):
        process, _, reply_q = worker
        while True:
            try:
                return reply_q.get(timeout=_GATHER_POLL_SECONDS)
            except queue_module.Empty:
                if not process.is_alive():
                    raise FuzzingError(
                        f"member worker pid={process.pid} died "
                        f"(exitcode {process.exitcode}) before replying"
                    ) from None

    def gather(self, expect_op: str) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Collect one reply per worker → stacked ``(labels, sims)``.

        Replies are read in member order; workers compute concurrently
        and each row lands as soon as its member finishes.  Worker
        compute seconds and encode counts accumulate into the group's
        stat block (see :meth:`drain_stats`).
        """
        labels_rows: list = [None] * self.n_members
        sims_rows: list = [None] * self.n_members
        for worker in self._workers:
            reply = self._get_reply(worker)
            if reply[0] == "error":
                raise FuzzingError(
                    f"member worker {reply[1]} failed:\n{reply[2]}"
                )
            op, member, labels, sims, n_encoded, encode_s, query_s = reply
            if op != expect_op:
                raise FuzzingError(
                    f"member worker {member} replied {op!r}, expected {expect_op!r}"
                )
            labels_rows[member] = labels
            sims_rows[member] = sims
            stats = self._stats
            stats["busy_seconds"] += encode_s + query_s
            stats["encode_seconds"] += encode_s
            stats["query_seconds"] += query_s
            if op == "predict":
                stats["member_encodes"] += n_encoded
                if member == 0:
                    stats["encoded_children"] += n_encoded
        labels = np.stack(labels_rows)
        sims = None if sims_rows[0] is None else np.stack(sims_rows)
        return labels, sims

    # -- telemetry -----------------------------------------------------------
    def reset_stats(self) -> None:
        self._stats = {
            "broadcast_bytes": 0,
            "busy_seconds": 0.0,
            "encode_seconds": 0.0,
            "query_seconds": 0.0,
            "member_encodes": 0,
            "encoded_children": 0,
        }

    def drain_stats(self) -> dict:
        """The accumulated worker-side stats since the last drain."""
        stats = self._stats
        self.reset_stats()
        return stats

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown: stop + join every worker, then the arena.

        Falls back to ``terminate()`` only for workers that fail to
        drain their queue in time, so a healthy group always exits 0.
        """
        if self._closed:
            return
        self._closed = True
        for _, request_q, _ in self._workers:
            try:
                request_q.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for process, request_q, reply_q in self._workers:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join()
            request_q.close()
            reply_q.close()
        if self._arena is not None:
            self._arena.close()

    def __enter__(self) -> "MemberWorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"MemberWorkerGroup(n_members={self.n_members}, "
            f"transport={self.transport!r}, alive={self.alive})"
        )


class _VoteGatherTarget(PredictionTarget):
    """Shared-codebook proxy: parent-side encode, worker-side AM queries.

    Wraps a :class:`~repro.fuzz.targets.SharedCodebookEnsembleTarget`
    so the stock batched engine runs unchanged — every surface except
    ``predict_hvs`` delegates to the wrapped target (encode, delta,
    reference, member bookkeeping all happen in the parent on the same
    arrays as lock-step), and ``predict_hvs`` broadcasts the encoded
    block to the K AM-only workers and stacks their vote rows.  The
    broadcast/gather wall-time lands in the recorder's IPC phases (they
    are sub-phases of the engine's ``query`` phase here).
    """

    def __init__(self, inner: PredictionTarget, group: MemberWorkerGroup, obs) -> None:
        self._inner = inner
        self._group = group
        self._obs = obs

    @property
    def members(self) -> tuple[Any, ...]:
        return self._inner.members

    @property
    def n_encode_blocks(self) -> int:
        return 1

    def member_shards(self):
        return self._inner.member_shards()

    def encode_batch(self, children: np.ndarray) -> tuple[np.ndarray, ...]:
        return self._inner.encode_batch(children)

    def predict_hvs(self, bundle, *, with_similarities: bool = False):
        if len(bundle) != 1:
            raise ConfigurationError(
                f"{len(bundle)} hypervector blocks for a shared-codebook "
                "ensemble (expected 1)"
            )
        obs = self._obs
        with obs.phase("broadcast"):
            nbytes = self._group.predict_hv(
                np.ascontiguousarray(bundle[0]), with_sims=with_similarities
            )
        obs.count("broadcast_bytes", nbytes)
        with obs.phase("gather"):
            labels, sims = self._group.gather("predict_hv")
        return TargetPredictions(labels, sims)

    def reference(self, predictions: TargetPredictions, index: int = 0):
        return self._inner.reference(predictions, index)

    def delta_encoder(self, domain: Any) -> Any:
        return self._inner.delta_encoder(domain)

    def delta_surface(self, encoder_handle: Any):
        return self._inner.delta_surface(encoder_handle)


class MemberShardedHDTest(BatchedHDTest):
    """The independent-codebook member-sharded engine.

    Runs the lock-step loop of :class:`~repro.fuzz.batch.BatchedHDTest`
    with the per-member encode + query phases displaced into the
    member workers: the parent mutates, broadcasts raw child blocks,
    assembles the gathered vote rows into the same
    :class:`~repro.fuzz.targets.TargetPredictions` the in-process path
    builds, and runs the oracle / fitness / survival phases unchanged.
    Survivor selection is shipped back to the workers as index orders
    (:meth:`~repro.fuzz.seeds.SeedPoolBatch.update`'s return value), so
    each worker's per-member parent accumulators track the parent's
    pool without any score traffic.
    """

    def __init__(self, *args, group: MemberWorkerGroup, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self._target.n_members < 2:
            raise ConfigurationError(
                "member sharding needs an ensemble of >= 2 members; "
                "use the batched/process executors for single models"
            )
        if self._target.n_members != group.n_members:
            raise ConfigurationError(
                f"worker group holds {group.n_members} members but the "
                f"target has {self._target.n_members}"
            )
        self._group = group

    def _member_delta_allowed(self) -> bool:
        """Whether workers may delta-encode (their encoders permitting).

        Overridable test hook, like ``_delta_encoder`` for the
        in-process engines.  Per-member delta is decided worker-side, so
        mixed-width ensembles — which force the lock-step engine to
        scratch-encode (one shared accumulator width) — still get
        incremental encoding here, member by member.
        """
        return True

    def fuzz_outcomes(
        self,
        inputs: Sequence[Any],
        *,
        rng=None,
        generators: Optional[Sequence[np.random.Generator]] = None,
    ) -> list[InputOutcome]:
        n = len(inputs)
        if n == 0:
            return []
        if generators is None:
            root = ensure_rng(rng) if rng is not None else self._rng
            generators = spawn(root, n)
        elif len(generators) != n:
            raise ConfigurationError(f"{len(generators)} generators for {n} inputs")
        originals = self._stack_inputs(inputs)
        cfg = self._config
        obs = self._obs
        group = self._group
        obs.count("inputs", n)
        delta_on = self._member_delta_allowed()
        with_sims = self._fitness.needs_similarities

        # Reference pass: workers encode + query the originals through
        # their own member; the parent only assembles votes.
        with obs.phase("broadcast"):
            nbytes = group.seed(originals, delta_on=delta_on)
        obs.count("broadcast_bytes", nbytes)
        with obs.phase("gather"):
            labels, _ = group.gather("seed")
        ref_predictions = TargetPredictions(labels)
        obs.count("seed_encodes", n)
        obs.count("am_queries", n * self._target.n_members)
        pool = SeedPoolBatch(
            originals, cfg.top_n, allocator=group.pool_allocator()
        )

        active = []
        outcomes: list[Optional[InputOutcome]] = [None] * n
        for i in range(n):
            reference = self._target.reference(ref_predictions, i)
            if self._oracle.reference_discrepancy(reference.votes):
                example = self._seed_discrepancy_example(originals[i], reference)
                obs.record_success(0, example.disagreed_members)
                outcomes[i] = InputOutcome(
                    success=True,
                    iterations=0,
                    reference_label=reference.label,
                    example=example,
                )
                continue
            active.append(
                _ActiveInput(
                    i, originals[i], reference, generators[i],
                    originals[i].tobytes(),
                )
            )

        for iteration in range(1, cfg.iter_times + 1):
            if not active:
                break
            obs.count("iterations", len(active))
            obs.heartbeat()
            with obs.phase("mutate"):
                plans = self._mutation_plans(active, pool)
            if not plans:
                continue
            total_children = sum(len(children) for _, children, _ in plans)
            obs.count("encode_requests", total_children)
            all_children = np.concatenate(
                [children for _, children, _ in plans], axis=0
            )
            metas = [
                (state.index, parent_ids, len(children))
                for state, children, parent_ids in plans
            ]
            with obs.phase("broadcast"):
                nbytes = group.predict(all_children, metas, with_sims=with_sims)
            obs.count("broadcast_bytes", nbytes)
            with obs.phase("gather"):
                labels, sims = group.gather("predict")
            all_predictions = TargetPredictions(labels, sims)
            obs.count("am_queries", total_children * self._target.n_members)

            retired: set[int] = set()
            orders: list[tuple[int, np.ndarray]] = []
            offset = 0
            for state, children, _ in plans:
                predictions = all_predictions.slice(offset, offset + len(children))
                offset += len(children)
                flips = self._discrepancies(state.reference, predictions)
                if flips.any():
                    example = self._pick_success(
                        state.original, children, predictions.labels, flips,
                        state.reference, iteration,
                    )
                    obs.record_success(iteration, example.disagreed_members)
                    outcomes[state.index] = InputOutcome(
                        success=True,
                        iterations=iteration,
                        reference_label=state.reference.label,
                        example=example,
                    )
                    retired.add(state.index)
                    continue
                scores = self._score_children(
                    state.reference, predictions, None, state.generator
                )
                order = pool.update(
                    state.index, children, scores, generation=iteration
                )
                if order is not None:
                    orders.append((state.index, order))
            if orders and delta_on:
                # Workers replay the parent's survivor order against
                # their staged per-member side arrays (delta path only;
                # scratch workers keep no survivor state).
                with obs.phase("broadcast"):
                    nbytes = group.commit(orders)
                obs.count("broadcast_bytes", nbytes)
            if retired:
                active = [s for s in active if s.index not in retired]

        if active:
            obs.count("exhausted", len(active))
        for state in active:
            outcomes[state.index] = InputOutcome(
                success=False,
                iterations=cfg.iter_times,
                reference_label=state.reference.label,
            )

        # Fold the workers' compute time + encode counts into the
        # recorder the way the process pool folds shard deltas: encode /
        # query phase seconds sum across workers, and member 0's encode
        # count stands for encoded_children (identical caches make every
        # member's count equal — the lock-step engine encodes each
        # missing child once per member too).
        if obs.enabled:
            stats = group.drain_stats()
            obs.merge({
                "counters": {
                    "encoded_children": stats["encoded_children"],
                    "encodes": stats["member_encodes"],
                },
                "phase_seconds": {
                    "encode": stats["encode_seconds"],
                    "query": stats["query_seconds"],
                },
                "busy_seconds": stats["busy_seconds"],
            })
        return outcomes  # type: ignore[return-value]


def create_member_engine(
    group: MemberWorkerGroup,
    model: Any,
    strategy: Any,
    *,
    telemetry=None,
    **engine_kwargs: Any,
) -> BatchedHDTest:
    """The right member-sharded engine for *model*'s target shape.

    Shared-codebook targets (one encode block) get the stock batched
    engine over a :class:`_VoteGatherTarget` proxy; independent
    ensembles get :class:`MemberShardedHDTest`.  Either way the parent
    runs mutation / oracle / fitness / survival and the workers answer
    member queries.
    """
    if not group.encodes_locally:
        from repro.fuzz.targets import resolve_target
        from repro.obs.recorder import NULL_TELEMETRY

        obs = telemetry if telemetry is not None else NULL_TELEMETRY
        proxy = _VoteGatherTarget(resolve_target(model), group, obs)
        return BatchedHDTest(proxy, strategy, telemetry=telemetry, **engine_kwargs)
    return MemberShardedHDTest(
        model, strategy, group=group, telemetry=telemetry, **engine_kwargs
    )
