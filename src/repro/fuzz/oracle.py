"""Differential oracles (Sec. IV; McKeeman-style differential testing).

HDTest never needs ground-truth labels.  Three discrepancy notions are
supported, one per oracle family:

* **self-differential** (:class:`DifferentialOracle`, the paper's) —
  one model's prediction on the *original* input is the reference, and
  any mutated input the model labels differently is — by construction —
  mispredicted on at least one of the two (they are visually the same
  class for in-budget perturbations);
* **targeted** (:class:`TargetedOracle`) — the extension where only
  flips *to a chosen class* count (adversarial-attack style);
* **cross-model** (:class:`CrossModelOracle`, :class:`MajorityOracle`) —
  the HDXplore form: K independently-seeded models predict the same
  input, and a child on which they *disagree with each other*
  (cross-model), or whose majority vote flips (majority), is a
  discrepancy.  These consume the ``(K, n)`` member-label blocks a
  :class:`~repro.fuzz.targets.ModelEnsembleTarget` produces and are the
  engines' default when one is under test.

Single-model oracles expose :meth:`~DifferentialOracle.discrepancies`;
ensemble oracles additionally implement
:meth:`~DifferentialOracle.discrepancies_ensemble` (the engines pick
the form matching the target's member count) and
:meth:`~DifferentialOracle.reference_discrepancy`, which flags inputs
the members *already* disagree on before any mutation — HDXplore's
"seed discrepancies", reported as iteration-0 successes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.targets import majority_vote

__all__ = [
    "DifferentialOracle",
    "TargetedOracle",
    "EnsembleOracle",
    "CrossModelOracle",
    "MajorityOracle",
]


class DifferentialOracle:
    """Flags label discrepancies between reference and query predictions."""

    def discrepancies(self, reference_label: int, query_labels: np.ndarray) -> np.ndarray:
        """Boolean mask: which query labels differ from the reference."""
        labels = np.asarray(query_labels)
        return labels != int(reference_label)

    def is_adversarial(self, reference_label: int, query_label: int) -> bool:
        """Single-candidate form of :meth:`discrepancies`."""
        return int(query_label) != int(reference_label)

    # -- ensemble surface --------------------------------------------------
    def reference_discrepancy(self, reference_votes: np.ndarray) -> bool:
        """Whether the members already disagree on the unmutated input.

        Single-model oracles have nothing to disagree about; ensemble
        oracles override this to surface HDXplore-style seed
        discrepancies as iteration-0 successes.
        """
        return False

    def discrepancies_ensemble(
        self, reference_votes: np.ndarray, member_labels: np.ndarray
    ) -> np.ndarray:
        """``(n,)`` mask over a ``(K, n)`` member-label block.

        Implemented by the cross-model oracles only; the fuzzing
        engines reject a K > 1 target paired with an oracle that does
        not override this.
        """
        raise ConfigurationError(
            f"{type(self).__name__} has no cross-model discrepancy rule; "
            "use CrossModelOracle or MajorityOracle with model ensembles"
        )

    def __repr__(self) -> str:
        return "DifferentialOracle()"


class TargetedOracle(DifferentialOracle):
    """Only flips landing on *target_label* count as successes.

    An extension of the paper's untargeted oracle, useful for studying
    directed attacks (e.g. "turn any 8 into a 3", Fig. 1's flip).
    """

    def __init__(self, target_label: int) -> None:
        if target_label < 0:
            raise ConfigurationError(f"target_label must be >= 0, got {target_label}")
        self.target_label = int(target_label)

    def discrepancies(self, reference_label: int, query_labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(query_labels)
        if self.target_label == int(reference_label):
            # A flip to the reference class is impossible by definition.
            return np.zeros(labels.shape, dtype=bool)
        return labels == self.target_label

    def __repr__(self) -> str:
        return f"TargetedOracle(target_label={self.target_label})"


class EnsembleOracle(DifferentialOracle):
    """Base for oracles that need a K > 1 :class:`ModelEnsembleTarget`."""

    def discrepancies(self, reference_label: int, query_labels: np.ndarray) -> np.ndarray:
        raise ConfigurationError(
            f"{type(self).__name__} compares models against each other; "
            "it needs a ModelEnsembleTarget with at least 2 members"
        )


class CrossModelOracle(EnsembleOracle):
    """Any pairwise disagreement between members counts (HDXplore).

    A child is a discrepancy when the K member predictions are not all
    equal — including children where a single dissenting member breaks
    an otherwise-unanimous vote.  Inputs the members already disagree on
    are *seed discrepancies*: flagged by :meth:`reference_discrepancy`
    and reported as iteration-0 successes without spending mutation
    budget.  Note the dual blind spot to the self-differential oracle:
    a unanimous flip (every member moves to the same wrong class) is
    invisible here, while it is exactly what
    :class:`DifferentialOracle` catches.
    """

    def reference_discrepancy(self, reference_votes: np.ndarray) -> bool:
        votes = np.asarray(reference_votes)
        return bool((votes != votes[0]).any())

    def discrepancies_ensemble(
        self, reference_votes: np.ndarray, member_labels: np.ndarray
    ) -> np.ndarray:
        labels = np.atleast_2d(np.asarray(member_labels))
        return (labels != labels[0]).any(axis=0)

    def __repr__(self) -> str:
        return "CrossModelOracle()"


class MajorityOracle(EnsembleOracle):
    """Flips of the ensemble's majority vote count as discrepancies.

    The ensemble is treated as one voting classifier: a child is a
    discrepancy when its majority vote (ties → lowest label,
    deterministically) differs from the majority vote on the original
    input.  Unlike :class:`CrossModelOracle` this *does* catch unanimous
    flips, and ignores lone dissenters that cannot move the vote.

    Parameters
    ----------
    n_classes:
        Number of classes the vote is taken over (the target's).
    """

    def __init__(self, n_classes: int) -> None:
        if n_classes < 1:
            raise ConfigurationError(f"n_classes must be >= 1, got {n_classes}")
        self.n_classes = int(n_classes)

    def reference_discrepancy(self, reference_votes: np.ndarray) -> bool:
        return False

    def discrepancies_ensemble(
        self, reference_votes: np.ndarray, member_labels: np.ndarray
    ) -> np.ndarray:
        votes = np.asarray(reference_votes)
        reference = int(majority_vote(votes[:, None], self.n_classes)[0])
        labels = np.atleast_2d(np.asarray(member_labels))
        return majority_vote(labels, self.n_classes) != reference

    def __repr__(self) -> str:
        return f"MajorityOracle(n_classes={self.n_classes})"
