"""Differential oracle (Sec. IV; McKeeman-style differential testing).

HDTest never needs ground-truth labels: the model's own prediction on
the *original* input is the reference, and any mutated input the model
labels differently is — by construction — mispredicted on at least one
of the two (they are visually the same class for in-budget
perturbations).  ``DifferentialOracle`` encapsulates that discrepancy
check; ``TargetedOracle`` is the extension where only flips *to a
chosen class* count (adversarial-attack style).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DifferentialOracle", "TargetedOracle"]


class DifferentialOracle:
    """Flags label discrepancies between reference and query predictions."""

    def discrepancies(self, reference_label: int, query_labels: np.ndarray) -> np.ndarray:
        """Boolean mask: which query labels differ from the reference."""
        labels = np.asarray(query_labels)
        return labels != int(reference_label)

    def is_adversarial(self, reference_label: int, query_label: int) -> bool:
        """Single-candidate form of :meth:`discrepancies`."""
        return int(query_label) != int(reference_label)

    def __repr__(self) -> str:
        return "DifferentialOracle()"


class TargetedOracle(DifferentialOracle):
    """Only flips landing on *target_label* count as successes.

    An extension of the paper's untargeted oracle, useful for studying
    directed attacks (e.g. "turn any 8 into a 3", Fig. 1's flip).
    """

    def __init__(self, target_label: int) -> None:
        if target_label < 0:
            raise ConfigurationError(f"target_label must be >= 0, got {target_label}")
        self.target_label = int(target_label)

    def discrepancies(self, reference_label: int, query_labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(query_labels)
        if self.target_label == int(reference_label):
            # A flip to the reference class is impossible by definition.
            return np.zeros(labels.shape, dtype=bool)
        return labels == self.target_label

    def __repr__(self) -> str:
        return f"TargetedOracle(target_label={self.target_label})"
