"""The HDTest fuzzing loop (Sec. IV, Alg. 1) — domain- and target-generic.

For each unlabeled input ``t`` (an image, a string, a feature
record — any registered :mod:`fuzzing domain <repro.fuzz.domains>`):

1. ``y = HDC(t)`` — the target's prediction on the unmutated input
   becomes the *reference* (differential testing: no manual labeling).
2. Repeat up to ``iter_times``:
   a. mutate every surviving seed into ``children_per_seed`` children;
   b. clip children into the valid input space and discard those whose
      perturbation (relative to the *original* ``t``) exceeds the
      distance budget;
   c. encode the survivors once, predict, and check the differential
      oracle: a discrepancy is a successful adversarial input —
      record it and stop;
   d. otherwise score children with the fitness function and keep the
      top-N fittest as next iteration's seeds.

The loop is deliberately per-input (matching the paper and keeping
iteration counts honest); all per-iteration work — mutation, encoding,
prediction, fitness — is batched across children.

The *system under test* is a
:class:`~repro.fuzz.targets.PredictionTarget` — either one classifier
(:class:`~repro.fuzz.targets.SingleModelTarget`, the paper's
self-differential setting: the reference is the model's own label, a
discrepancy is any flip away from it, and the guided fitness is
``1 − Cosim(AM[y], HDC(seed))``) or a K-member
:class:`~repro.fuzz.targets.ModelEnsembleTarget` (the HDXplore
setting: the reference is the members' vote on the original, a
discrepancy is cross-model disagreement — or a majority flip, with
:class:`~repro.fuzz.oracle.MajorityOracle` — and the guided fitness is
the ensemble's
:class:`~repro.fuzz.fitness.AgreementMarginFitness`).  Inputs the
members already disagree on are *seed discrepancies*, reported as
iteration-0 successes.  A bare model wraps into a
``SingleModelTarget``, bit-identically to the pre-target engines.

Everything modality-specific is delegated to the engine's
:class:`~repro.fuzz.domains.FuzzDomain`: raw inputs are converted to
the domain's *internal array representation* once at entry (strings
become uint8 alphabet-code rows; images and records stay float64), the
loop runs entirely on those arrays, and adversarial payloads are
converted back at exit.  The domain also supplies the default
perturbation constraint and decides whether the model's encoder
supports incremental encoding.

Like the batched engine, the sequential loop encodes children
*incrementally* whenever the encoder exposes the delta surface
(:data:`~repro.fuzz.domains.DELTA_ENCODER_API`): each surviving seed
carries its integer accumulator and quantised levels through the
:class:`SeedPool`, and a child's accumulator is computed from its
parent's over only the changed components (pixels, characters, …).
The algebra is exact, so outcomes are bit-identical to scratch
re-encoding (property-tested in ``tests/fuzz/test_sequential_delta.py``
and ``tests/fuzz/test_cross_modality.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz.constraints import Constraint
from repro.fuzz.domains.base import DELTA_ENCODER_API, FuzzDomain, resolve_domain
from repro.fuzz.fitness import (
    AgreementMarginFitness,
    DistanceGuidedFitness,
    FitnessFunction,
    RandomFitness,
    packed_bipolar_dimension,
)
from repro.fuzz.mutations import MutationStrategy, create_strategy
from repro.fuzz.oracle import DifferentialOracle, EnsembleOracle
from repro.fuzz.results import AdversarialExample, CampaignResult, InputOutcome
from repro.fuzz.seeds import SeedPool
from repro.fuzz.targets import (
    PredictionTarget,
    TargetPredictions,
    TargetReference,
    resolve_target,
    vote_counts,
)
from repro.hdc.model import HDCClassifier
from repro.obs.recorder import NULL_TELEMETRY, CampaignTelemetry, Stopwatch
from repro.utils.cache import LRUCache, resolve_with_cache
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["HDTestConfig", "HDTest", "DELTA_ENCODER_API"]


@dataclass(frozen=True)
class HDTestConfig:
    """Tunable knobs of the fuzzing loop.

    Attributes
    ----------
    iter_times:
        Maximum fuzzing iterations per input (Alg. 1's budget).
    top_n:
        Seed-pool capacity — "only the top-N fittest seeds can survive
        (in our experiments, N = 3)".
    children_per_seed:
        Mutants generated from each surviving seed per iteration.
    guided:
        Distance-guided survival (True, the paper's HDTest) or the
        unguided random-survival baseline (False).
    dedupe:
        Encode each *distinct* child once per input (cached across
        iterations).  A pure optimisation — results are identical — but
        a large one for discrete strategies: ``shift`` children collapse
        onto a handful of net translations that recur across
        iterations, which is what makes shift the cheapest strategy per
        generated image (Table II's "only changes the pixel locations,
        or more exactly, indices" remark).
    cache_max_entries:
        Capacity of the dedupe cache (least-recently-used eviction).
        Continuous strategies such as ``gauss`` produce children that
        essentially never repeat, so an unbounded cache would hold every
        child of the run — thousands of D-dimensional vectors per input.
        The default (512) comfortably covers the working sets that
        actually hit (discrete strategies collapse onto a few dozen
        distinct children) while capping memory at a few megabytes.
    """

    iter_times: int = 50
    top_n: int = 3
    children_per_seed: int = 8
    guided: bool = True
    dedupe: bool = True
    cache_max_entries: int = 512

    def __post_init__(self) -> None:
        check_positive_int(self.iter_times, "iter_times")
        check_positive_int(self.top_n, "top_n")
        check_positive_int(self.children_per_seed, "children_per_seed")
        check_positive_int(self.cache_max_entries, "cache_max_entries")


class HDTest:
    """Differential fuzz tester for HDC classifiers.

    Parameters
    ----------
    model:
        The grey-box system under test: a trained
        :class:`~repro.hdc.model.HDCClassifier` (or any model exposing
        the Sec. IV grey-box API), or a
        :class:`~repro.fuzz.targets.PredictionTarget` — in particular a
        :class:`~repro.fuzz.targets.ModelEnsembleTarget` for HDXplore's
        cross-model differential setting.
    strategy:
        A :class:`~repro.fuzz.mutations.MutationStrategy` instance or a
        registered name (``"gauss"``, ``"char_sub"``, ``"record_rand"``, …).
    domain:
        The input modality — a registered name (``"image"``, ``"text"``,
        ``"record"``/``"voice"``), a
        :class:`~repro.fuzz.domains.FuzzDomain` instance, or ``None``
        to derive it from the strategy's namespace tag.  The domain
        owns input validation, the internal array representation, and
        the default constraint.
    config:
        Loop parameters; defaults to :class:`HDTestConfig`.
    constraint:
        Perturbation budget.  Defaults to the domain's budget — the
        paper's ``L2 < 1`` for images, the character-Hamming budget for
        text, the record budget for records — except for metric-free
        strategies (``shift``, ``record_shift``), which default to
        :class:`~repro.fuzz.constraints.NullConstraint` (Table II's
        footnote: distance metrics are not meaningful for shift).
    fitness:
        Override the fitness function.  Defaults to the paper's
        :class:`~repro.fuzz.fitness.DistanceGuidedFitness` for single
        models and the discrepancy-guided
        :class:`~repro.fuzz.fitness.AgreementMarginFitness` for
        ensembles, or :class:`~repro.fuzz.fitness.RandomFitness` when
        ``config.guided`` is False.
    oracle:
        Discrepancy check; defaults to the untargeted
        :class:`~repro.fuzz.oracle.DifferentialOracle` for single
        models and :class:`~repro.fuzz.oracle.CrossModelOracle` for
        ensembles.
    rng:
        Root seed/generator for mutation randomness.
    telemetry:
        Optional :class:`~repro.obs.recorder.CampaignTelemetry` the
        engine records counters and phase timings into.  ``None`` (the
        default) installs the no-op :data:`~repro.obs.recorder.NULL_TELEMETRY`;
        telemetry never touches the RNG, so enabling it cannot change
        campaign outcomes.

    Examples
    --------
    >>> from repro.datasets import load_digits
    >>> from repro.hdc import PixelEncoder, HDCClassifier
    >>> from repro.fuzz import HDTest
    >>> train, test = load_digits(n_train=300, n_test=20, seed=3)
    >>> model = HDCClassifier(PixelEncoder(dimension=2048, rng=3), 10)
    >>> _ = model.fit(train.images, train.labels)
    >>> result = HDTest(model, "gauss", rng=0).fuzz(test.images[:5])
    >>> result.n_inputs
    5
    """

    def __init__(
        self,
        model: HDCClassifier,
        strategy: Union[str, MutationStrategy],
        *,
        domain: Union[None, str, FuzzDomain] = None,
        config: Optional[HDTestConfig] = None,
        constraint: Optional[Constraint] = None,
        fitness: Optional[FitnessFunction] = None,
        oracle: Optional[DifferentialOracle] = None,
        rng: RngLike = None,
        telemetry: Optional[CampaignTelemetry] = None,
    ) -> None:
        self._obs = telemetry if telemetry is not None else NULL_TELEMETRY
        # Duck-typed grey-box check (Sec. IV): the fuzzer needs
        # predictions for the oracle plus query/reference HVs for the
        # fitness — any model exposing those is fuzzable, including the
        # dense-binary family in repro.hdc.binary_model.  A
        # PredictionTarget (single model or K-member ensemble) passes
        # through; a bare model wraps into a SingleModelTarget, whose
        # engine behaviour is bit-identical to the pre-target engines.
        self._target = resolve_target(model)
        self._model = self._target.primary
        self._strategy = (
            create_strategy(strategy) if isinstance(strategy, str) else strategy
        )
        if not isinstance(self._strategy, MutationStrategy):
            raise ConfigurationError(
                f"strategy must be a name or MutationStrategy, got "
                f"{type(self._strategy).__name__}"
            )
        self._config = config if config is not None else HDTestConfig()
        self._rng = ensure_rng(rng)
        self._domain = resolve_domain(
            domain, strategy=self._strategy, model=self._model
        )
        if self._domain.name != self._strategy.domain:
            raise ConfigurationError(
                f"strategy {self._strategy.name!r} belongs to the "
                f"{self._strategy.domain!r} domain, not {self._domain.name!r}"
            )
        self._domain.validate_strategy(self._strategy)
        if constraint is None:
            constraint = self._domain.default_constraint(self._strategy)
        self._constraint = constraint
        if self._target.n_members == 1:
            self._fitness = self._resolve_single_fitness(fitness)
            self._oracle = oracle if oracle is not None else DifferentialOracle()
            if isinstance(self._oracle, EnsembleOracle):
                raise ConfigurationError(
                    f"{type(self._oracle).__name__} compares models against "
                    "each other; fuzz a ModelEnsembleTarget with >= 2 members"
                )
        else:
            self._fitness = self._resolve_ensemble_fitness(fitness)
            self._oracle = oracle
            if self._oracle is None:
                from repro.fuzz.oracle import CrossModelOracle

                self._oracle = CrossModelOracle()
            elif (
                type(self._oracle).discrepancies_ensemble
                is DifferentialOracle.discrepancies_ensemble
            ):
                raise ConfigurationError(
                    f"{type(self._oracle).__name__} has no cross-model "
                    "discrepancy rule; use CrossModelOracle or MajorityOracle "
                    "with model ensembles"
                )

    def _resolve_single_fitness(self, fitness):
        """Default/validate the fitness for a single-model target."""
        bipolar_dim = packed_bipolar_dimension(self._model)
        if fitness is None:
            # The default guided fitness must know when the model's
            # grey-box HVs are packed *bipolar* sign words (uint64, like
            # packed binary words) so it scores with the sign-bit cosine.
            return (
                DistanceGuidedFitness(bipolar_dimension=bipolar_dim)
                if self._config.guided
                else RandomFitness(rng=self._rng)
            )
        if bipolar_dim is not None and (
            getattr(fitness, "_bipolar_dimension", bipolar_dim) != bipolar_dim
        ):
            # A cosine fitness built without bipolar_dimension would
            # silently score sign words with the *binary* popcount
            # cosine, and one built for a different dimension would
            # mis-scale them — valid floats, wrong ranking, either way.
            # Fail loudly instead.  (Fitnesses without the attribute —
            # RandomFitness, custom ones — pass through untouched.)
            raise ConfigurationError(
                f"{type(fitness).__name__} was constructed with "
                f"bipolar_dimension="
                f"{getattr(fitness, '_bipolar_dimension')!r} but "
                f"{type(self._model).__name__} emits packed bipolar sign "
                f"words of dimension {bipolar_dim}; pass "
                f"bipolar_dimension={bipolar_dim} "
                "(see repro.fuzz.fitness.packed_bipolar_dimension)"
            )
        return fitness

    def _resolve_ensemble_fitness(self, fitness):
        """Default/validate the fitness for a K > 1 ensemble target."""
        if fitness is None:
            # HDXplore's guidance: minimise the ensemble's vote margin.
            return (
                AgreementMarginFitness()
                if self._config.guided
                else RandomFitness(rng=self._rng)
            )
        if (
            type(fitness).scores_ensemble is FitnessFunction.scores_ensemble
        ):
            raise ConfigurationError(
                f"{type(fitness).__name__} cannot score ensemble predictions; "
                "use an ensemble-aware fitness (AgreementMarginFitness, "
                "RandomFitness) or fuzz a single model"
            )
        return fitness

    # -- introspection ---------------------------------------------------
    @property
    def model(self) -> HDCClassifier:
        """The (primary) model under test."""
        return self._model

    @property
    def target(self) -> PredictionTarget:
        """The full prediction target (single model or K-member ensemble)."""
        return self._target

    @property
    def strategy(self) -> MutationStrategy:
        """Active mutation strategy."""
        return self._strategy

    @property
    def config(self) -> HDTestConfig:
        """Loop parameters."""
        return self._config

    @property
    def constraint(self) -> Constraint:
        """Active perturbation budget."""
        return self._constraint

    @property
    def domain(self) -> FuzzDomain:
        """The engine's input modality."""
        return self._domain

    @property
    def telemetry(self) -> Any:
        """The active recorder (:data:`NULL_TELEMETRY` when disabled)."""
        return self._obs

    # -- single input ------------------------------------------------------
    def fuzz_one(self, original: Any, *, rng: RngLike = None) -> InputOutcome:
        """Run Alg. 1 on one input; returns its :class:`InputOutcome`."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        cfg = self._config
        obs = self._obs
        obs.count("inputs")

        internal = self._domain.to_internal(original)
        pool: SeedPool = SeedPool(cfg.top_n)
        surface = self._target.delta_surface(self._delta_encoder())
        with obs.phase("encode"):
            if surface is not None:
                # One scratch encode serves both the reference query and the
                # generation-0 delta side data (Alg. 1 line 1, "y = HDC(t)").
                stacked = internal[None]
                acc0, levels0 = surface.seed_side_data(stacked)
                reference_query = surface.hvs_from_accumulators(acc0)
                pool.reset(internal, accumulator=acc0[0], levels=levels0[0])
            else:
                reference_query = self._target.encode_batch(internal[None])
                pool.reset(internal)
        obs.count("seed_encodes")
        with obs.phase("query"):
            ref = self._target.reference(self._target.predict_hvs(reference_query))
        obs.count("am_queries", self._target.n_members)
        if self._oracle.reference_discrepancy(ref.votes):
            # HDXplore-style seed discrepancy: the members disagree
            # before any mutation — report it without spending budget.
            example = self._seed_discrepancy_example(internal, ref)
            obs.record_success(0, example.disagreed_members)
            return InputOutcome(
                success=True,
                iterations=0,
                reference_label=ref.label,
                example=example,
            )
        encode_cache: LRUCache[bytes, Any] = LRUCache(cfg.cache_max_entries)

        for iteration in range(1, cfg.iter_times + 1):
            obs.count("iterations")
            obs.heartbeat()
            seeds = pool.seeds
            with obs.phase("mutate"):
                children, parent_ids = self._expand(seeds, internal, generator)
            if len(children) == 0:
                # Every child blew the budget; iteration still counts
                # (seed generation + check happened), seeds are retained.
                continue

            accs = levels = None
            obs.count("encode_requests", len(children))
            with obs.phase("encode"):
                if surface is not None:
                    bundle, accs, levels = self._encode_children_delta(
                        surface, children, parent_ids, seeds, encode_cache
                    )
                else:
                    bundle = self._encode_children(children, encode_cache)
            predictions = self._predict_children(bundle)
            flips = self._discrepancies(ref, predictions)
            if flips.any():
                example = self._pick_success(
                    internal, children, predictions.labels, flips, ref, iteration
                )
                obs.record_success(iteration, example.disagreed_members)
                return InputOutcome(
                    success=True,
                    iterations=iteration,
                    reference_label=ref.label,
                    example=example,
                )

            scores = self._score_children(ref, predictions, bundle, generator)
            pool.update(
                children, scores, generation=iteration,
                accumulators=accs, levels=levels,
            )

        obs.count("exhausted")
        return InputOutcome(
            success=False,
            iterations=cfg.iter_times,
            reference_label=ref.label,
        )

    # -- target dispatch ---------------------------------------------------
    def _predict_children(self, bundle) -> TargetPredictions:
        """Lock-step member predictions over one child bundle.

        Shared by both engines, so instrumenting here covers the
        ``query`` phase and AM-query counting everywhere.
        """
        self._obs.count("am_queries", len(bundle[0]) * self._target.n_members)
        with self._obs.phase("query"):
            return self._target.predict_hvs(
                bundle,
                with_similarities=(
                    self._target.n_members > 1 and self._fitness.needs_similarities
                ),
            )

    def _discrepancies(self, ref: TargetReference, predictions: TargetPredictions):
        """The oracle's flip mask, in single or cross-model form."""
        with self._obs.phase("oracle"):
            if self._target.n_members == 1:
                return self._oracle.discrepancies(ref.label, predictions.labels[0])
            return self._oracle.discrepancies_ensemble(ref.votes, predictions.labels)

    def _score_children(self, ref, predictions, bundle, generator) -> np.ndarray:
        """Fitness of the iteration's children (Alg. 1's survival scores)."""
        with self._obs.phase("fitness"):
            if self._target.n_members == 1:
                return self._fitness.scores(ref.fitness_hv, bundle[0], rng=generator)
            return self._fitness.scores_ensemble(predictions, rng=generator)

    # -- batches -----------------------------------------------------------
    def fuzz(self, inputs: Sequence[Any], *, rng: RngLike = None) -> CampaignResult:
        """Fuzz every input; returns the aggregated :class:`CampaignResult`."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        outcomes: list[InputOutcome] = []
        mark = self._obs.marker()
        with Stopwatch() as sw:
            for original in inputs:
                outcomes.append(self.fuzz_one(original, rng=generator))
        return CampaignResult(
            strategy=self._strategy.name,
            outcomes=outcomes,
            elapsed_seconds=sw.elapsed,
            guided=self._fitness.guided,
            n_members=self._target.n_members,
            telemetry=self._obs.since(mark),
        )

    # -- internals -----------------------------------------------------
    def _count_encodes(self, n_children: int) -> None:
        """Count *n_children* actually-encoded rows (cache misses)."""
        self._obs.count("encoded_children", n_children)
        self._obs.count("encodes", n_children * self._target.n_encode_blocks)

    @staticmethod
    def _child_key(child) -> bytes:
        """Dedupe-cache key of one child (raw bytes of its internal form)."""
        return child.tobytes()

    @staticmethod
    def _child_keys(children: np.ndarray) -> list[bytes]:
        """Dedupe-cache keys of a whole child block, hashed in one pass.

        One ``tobytes`` over the contiguous block, sliced per row —
        byte-identical to calling :meth:`_child_key` row by row.
        """
        block = np.ascontiguousarray(children)
        blob = block.tobytes()
        row_nbytes = block[0].nbytes
        return [
            blob[j * row_nbytes : (j + 1) * row_nbytes]
            for j in range(len(block))
        ]

    def _encode_children(self, children, cache: LRUCache[bytes, Any]):
        """Scratch-encode children (per-member bundle), memoised per input.

        Cache entries hold one row per member so mixed-width ensembles
        (members of different hypervector dimension or packing) dedupe
        through the same cache.
        """
        if not self._config.dedupe:
            self._count_encodes(len(children))
            return self._target.encode_batch(children)

        def encode_missing(positions: list[int]) -> list[tuple]:
            self._count_encodes(len(positions))
            fresh = self._target.encode_batch(
                np.stack([children[p] for p in positions])
            )
            return [tuple(block[j] for block in fresh) for j in range(len(positions))]

        keys = [self._child_key(child) for child in children]
        rows = resolve_with_cache(cache, keys, encode_missing)
        return tuple(
            np.stack([row[m] for row in rows])
            for m in range(self._target.n_encode_blocks)
        )

    def _expand(self, seeds, original: np.ndarray, generator: np.random.Generator):
        """Mutate, clip, and budget-filter every surviving seed's children.

        Seeds and children are internal domain arrays.  Returns the
        in-budget children plus each child's parent index into *seeds*;
        parent indices are derived from actual batch lengths, so an
        off-count mutation batch cannot silently pair a child with the
        wrong parent.
        """
        cfg = self._config
        batches = [
            self._strategy.mutate(seed.data, cfg.children_per_seed, rng=generator)
            for seed in seeds
        ]
        if not isinstance(batches[0], np.ndarray):
            raise FuzzingError(
                f"strategy {self._strategy.name!r} returned "
                f"{type(batches[0]).__name__} children for an array seed; "
                "strategies must stay in the domain's internal representation"
            )
        children = np.concatenate(batches, axis=0)
        self._obs.count("children", len(children))
        self._obs.count_strategy(self._strategy.name, len(children))
        children = self._constraint.clip(children)
        keep = self._constraint.accept(original, children)
        parent_ids = np.repeat(
            np.arange(len(batches)), [len(batch) for batch in batches]
        )[keep]
        kept = children[keep]
        self._obs.count("children_in_budget", len(kept))
        return kept, parent_ids

    # -- incremental (delta) encoding --------------------------------------
    def _delta_encoder(self):
        """The target's delta-capable encoder handle, or ``None``.

        Thin hook over :meth:`PredictionTarget.delta_encoder` (for a
        single model: the model's encoder when it exposes
        :data:`~repro.fuzz.domains.DELTA_ENCODER_API`) — tests and
        benchmarks override it per instance to force the scratch path.
        """
        return self._target.delta_encoder(self._domain)

    def _encode_children_delta(self, surface, children, parent_ids, seeds, cache):
        """Incremental path: children encoded from parent accumulators.

        Cache entries hold compact integer accumulators (they are
        exact — the hypervector is a deterministic function of them), so
        a hit skips even the delta work.  Bit-identical to a scratch
        ``encode_batch`` of the children.  For ensembles the
        accumulator rows carry a leading member axis (every member
        delta-encodes from its own parent accumulator).
        """
        levels = surface.child_levels(children)
        parent_accs_all = np.stack([seed.accumulator for seed in seeds])
        parent_levels_all = np.stack([seed.levels for seed in seeds])

        def delta_missing(positions: list) -> np.ndarray:
            self._count_encodes(len(positions))
            rows = parent_ids[positions]
            return surface.accumulate_delta(
                levels[positions], parent_levels_all[rows], parent_accs_all[rows]
            )

        if self._config.dedupe:
            keys = [self._child_key(children[j]) for j in range(len(children))]
            accs = np.stack(resolve_with_cache(cache, keys, delta_missing))
        else:
            accs = delta_missing(list(range(len(children))))
        return surface.hvs_from_accumulators(accs), accs, levels

    def _pick_success(
        self,
        original: np.ndarray,
        children,
        member_labels: np.ndarray,
        flips: np.ndarray,
        ref: TargetReference,
        iteration: int,
    ) -> AdversarialExample:
        """Among flipped children, keep the least-perturbed one.

        *original* and *children* arrive in the domain's internal
        representation; the reported example converts both back to the
        user-facing form (array copy for images/records, string for
        text).  *member_labels* is the ``(K, n)`` prediction block —
        one row for a single model.
        """
        indices = np.nonzero(flips)[0]
        best_idx = int(indices[0])
        best_key = float("inf")
        for i in indices:
            child = children[int(i)]
            metrics = self._constraint.measure(original, child)
            # Rank by L2 when available, else edits, else first wins.
            key = metrics.get("l2", metrics.get("edits", 0.0))
            if key < best_key:
                best_key = key
                best_idx = int(i)
        chosen = children[best_idx]
        adversarial_label, disagreed = self._example_labels(
            ref, member_labels[:, best_idx]
        )
        return AdversarialExample(
            original=self._domain.to_external(original),
            adversarial=self._domain.to_external(chosen),
            reference_label=ref.label,
            adversarial_label=adversarial_label,
            iterations=iteration,
            metrics=self._constraint.measure(original, chosen),
            strategy=self._strategy.name,
            disagreed_members=disagreed,
        )

    def _example_labels(
        self, ref: TargetReference, labels_column: np.ndarray
    ) -> tuple[int, Optional[tuple[int, ...]]]:
        """Reported labels of one flipped child.

        Single model: the flipped prediction, no member bookkeeping.
        Ensemble: the adversarial label is the most common member label
        other than the reference (ties → lowest), and
        ``disagreed_members`` lists the members that left the reference
        label — the debugging loop's retraining signal.
        """
        if self._target.n_members == 1:
            return int(labels_column[0]), None
        counts = vote_counts(labels_column[:, None], self._target.n_classes)[0]
        counts[ref.label] = -1  # never report the reference as the flip
        adversarial_label = int(np.argmax(counts))
        disagreed = tuple(int(m) for m in np.nonzero(labels_column != ref.label)[0])
        return adversarial_label, disagreed

    def _seed_discrepancy_example(
        self, internal: np.ndarray, ref: TargetReference
    ) -> AdversarialExample:
        """An iteration-0 example for inputs the members already split on."""
        external = self._domain.to_external(internal)
        adversarial_label, disagreed = self._example_labels(ref, ref.votes)
        return AdversarialExample(
            original=external,
            adversarial=self._domain.to_external(internal),
            reference_label=ref.label,
            adversarial_label=adversarial_label,
            iterations=0,
            metrics=self._constraint.measure(internal, internal),
            strategy=self._strategy.name,
            disagreed_members=disagreed,
        )
