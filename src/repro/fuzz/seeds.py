"""Seed pool: the survivors that fuel the next fuzzing iteration.

Alg. 1, Line 14: "Continue fuzzing using only the fittest seeds" —
"during the mutation process, only the top-N fittest seeds can survive
(in our experiments, N = 3)".  :class:`SeedPool` holds the current
survivors with their fitness scores and performs that top-N selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generic, Iterator, Sequence, TypeVar

import numpy as np

from repro.errors import FuzzingError
from repro.utils.validation import check_positive_int

__all__ = ["Seed", "SeedPool"]

T = TypeVar("T")


@dataclass(frozen=True)
class Seed(Generic[T]):
    """One candidate input with its fitness and lineage depth.

    Attributes
    ----------
    data:
        The input itself (image array or string).
    fitness:
        Score assigned by the fitness function (higher survives).
    generation:
        Fuzzing iteration at which this seed was created (0 = the
        original input).
    """

    data: T
    fitness: float
    generation: int = 0


class SeedPool(Generic[T]):
    """Keeps the top-N fittest seeds across fuzzing iterations.

    Parameters
    ----------
    top_n:
        Pool capacity (the paper's N = 3).
    """

    def __init__(self, top_n: int = 3) -> None:
        self._top_n = check_positive_int(top_n, "top_n")
        self._seeds: list[Seed[T]] = []

    @property
    def top_n(self) -> int:
        """Pool capacity."""
        return self._top_n

    @property
    def seeds(self) -> list[Seed[T]]:
        """Current survivors, fittest first (copy)."""
        return list(self._seeds)

    def __len__(self) -> int:
        return len(self._seeds)

    def __iter__(self) -> Iterator[Seed[T]]:
        return iter(self._seeds)

    def reset(self, original: T) -> None:
        """Restart the pool from the original input (generation 0).

        The original gets fitness -inf so any scored child displaces it.
        """
        self._seeds = [Seed(original, float("-inf"), 0)]

    def update(
        self,
        candidates: Sequence[T],
        fitnesses: Sequence[float],
        *,
        generation: int,
    ) -> None:
        """Replace pool contents with the top-N of *candidates*.

        Matches Alg. 1: survivors are chosen among the new children (the
        pool is not mixed with previous generations — each iteration's
        children fully replace their parents).
        """
        scores = np.asarray(fitnesses, dtype=np.float64)
        if len(candidates) != scores.shape[0]:
            raise FuzzingError(
                f"{len(candidates)} candidates but {scores.shape[0]} fitness scores"
            )
        if len(candidates) == 0:
            # Nothing survived the constraint this round; keep current
            # seeds so the next iteration can try different mutations.
            return
        order = np.argsort(-scores, kind="stable")[: self._top_n]
        self._seeds = [
            Seed(candidates[int(i)], float(scores[int(i)]), generation) for i in order
        ]

    def best(self) -> Seed[T]:
        """The fittest current seed."""
        if not self._seeds:
            raise FuzzingError("seed pool is empty — call reset() first")
        return self._seeds[0]
