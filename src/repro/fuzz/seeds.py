"""Seed pool: the survivors that fuel the next fuzzing iteration.

Alg. 1, Line 14: "Continue fuzzing using only the fittest seeds" —
"during the mutation process, only the top-N fittest seeds can survive
(in our experiments, N = 3)".  :class:`SeedPool` holds the current
survivors with their fitness scores and performs that top-N selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generic, Iterator, Sequence, TypeVar

import numpy as np

from repro.errors import FuzzingError
from repro.utils.validation import check_positive_int

__all__ = ["Seed", "SeedPool", "SeedPoolBatch"]

T = TypeVar("T")


@dataclass(frozen=True)
class Seed(Generic[T]):
    """One candidate input with its fitness and lineage depth.

    Attributes
    ----------
    data:
        The input in its domain's internal array form (pixel grid,
        alphabet-code row, feature record).
    fitness:
        Score assigned by the fitness function (higher survives).
    generation:
        Fuzzing iteration at which this seed was created (0 = the
        original input).
    accumulator:
        Optional integer encoder accumulator of this seed, carried so
        the sequential engine can delta-encode the seed's children from
        it (mirrors :class:`SeedPoolBatch`'s side arrays).  Ensemble
        targets store one accumulator row per member, ``(K, D)``.
    levels:
        Optional quantised levels of this seed, idem.
    """

    data: T
    fitness: float
    generation: int = 0
    accumulator: Any = None
    levels: Any = None


class SeedPool(Generic[T]):
    """Keeps the top-N fittest seeds across fuzzing iterations.

    Parameters
    ----------
    top_n:
        Pool capacity (the paper's N = 3).
    """

    def __init__(self, top_n: int = 3) -> None:
        self._top_n = check_positive_int(top_n, "top_n")
        self._seeds: list[Seed[T]] = []

    @property
    def top_n(self) -> int:
        """Pool capacity."""
        return self._top_n

    @property
    def seeds(self) -> list[Seed[T]]:
        """Current survivors, fittest first (copy)."""
        return list(self._seeds)

    def __len__(self) -> int:
        return len(self._seeds)

    def __iter__(self) -> Iterator[Seed[T]]:
        return iter(self._seeds)

    def reset(
        self,
        original: T,
        *,
        accumulator=None,
        levels=None,
    ) -> None:
        """Restart the pool from the original input (generation 0).

        The original gets fitness -inf so any scored child displaces it.
        *accumulator*/*levels* seed the incremental-encoding side data
        (see :class:`Seed`).
        """
        self._seeds = [Seed(original, float("-inf"), 0, accumulator, levels)]

    def update(
        self,
        candidates: Sequence[T],
        fitnesses: Sequence[float],
        *,
        generation: int,
        accumulators=None,
        levels=None,
    ) -> None:
        """Replace pool contents with the top-N of *candidates*.

        Matches Alg. 1: survivors are chosen among the new children (the
        pool is not mixed with previous generations — each iteration's
        children fully replace their parents).  *accumulators*/*levels*
        are optional per-candidate side rows kept with each survivor so
        it can parent delta encodes next iteration.
        """
        scores = np.asarray(fitnesses, dtype=np.float64)
        if len(candidates) != scores.shape[0]:
            raise FuzzingError(
                f"{len(candidates)} candidates but {scores.shape[0]} fitness scores"
            )
        if len(candidates) == 0:
            # Nothing survived the constraint this round; keep current
            # seeds so the next iteration can try different mutations.
            return
        order = np.argsort(-scores, kind="stable")[: self._top_n]
        self._seeds = [
            Seed(
                candidates[int(i)],
                float(scores[int(i)]),
                generation,
                None if accumulators is None else accumulators[int(i)],
                None if levels is None else levels[int(i)],
            )
            for i in order
        ]

    def best(self) -> Seed[T]:
        """The fittest current seed."""
        if not self._seeds:
            raise FuzzingError("seed pool is empty — call reset() first")
        return self._seeds[0]


class SeedPoolBatch:
    """Per-input top-N seed pools held as stacked arrays.

    The batched engine (:class:`repro.fuzz.batch.BatchedHDTest`) runs
    Alg. 1 in lock-step over many inputs; this is the array-of-pools it
    iterates.  Semantically each row *i* behaves exactly like a
    :class:`SeedPool` — survivors are the top-N fittest children of the
    latest generation, fittest first, selected with the same stable
    sort — but storage is one ``(n_inputs, top_n, …)`` block per field
    instead of *n* object pools, and each seed can carry *side arrays*
    (its integer accumulator and quantised levels) that the incremental
    encoder reuses when the seed becomes a parent.

    Parameters
    ----------
    originals:
        ``(n_inputs, …)`` stacked original inputs (generation 0).
    top_n:
        Pool capacity per input (the paper's N = 3).
    accumulators:
        Optional ``(n_inputs, D)`` integer accumulators of the
        originals, kept per surviving seed for delta encoding.
        Ensemble targets stack one accumulator per member —
        ``(n_inputs, K, D)`` — so each member delta-encodes a seed's
        children from its *own* parent accumulator; any trailing shape
        after the input axis is carried through selection untouched.
    levels:
        Optional ``(n_inputs, P)`` (or per-member ``(n_inputs, K, P)``)
        quantised levels of the originals, idem.
    allocator:
        Optional ``(shape, dtype) -> ndarray`` factory for the stacked
        seed-data block (and side blocks).  The member-sharded executor
        passes a :meth:`repro.utils.shm.ShmArena.allocator` here so the
        pool's arrays live in shared memory — survivors are then
        readable by worker processes without any per-iteration pickling.
    """

    def __init__(
        self,
        originals: np.ndarray,
        top_n: int = 3,
        *,
        accumulators: np.ndarray | None = None,
        levels: np.ndarray | None = None,
        allocator=None,
    ) -> None:
        self._top_n = check_positive_int(top_n, "top_n")
        self._allocate = allocator if allocator is not None else np.zeros
        originals = np.asarray(originals)
        if originals.ndim < 2:
            raise FuzzingError(
                f"originals must be a stacked (n_inputs, …) batch, got {originals.shape}"
            )
        n = originals.shape[0]
        self._data = self._allocate(
            (n, self._top_n) + originals.shape[1:], originals.dtype
        )
        self._data[:, 0] = originals
        self._fitness = np.full((n, self._top_n), -np.inf)
        self._generations = np.zeros((n, self._top_n), dtype=np.int64)
        self._counts = np.ones(n, dtype=np.int64)
        self._accs = self._side_block(accumulators, n, "accumulators")
        self._levels = self._side_block(levels, n, "levels")

    def _side_block(self, values, n: int, name: str) -> np.ndarray | None:
        if values is None:
            return None
        values = np.asarray(values)
        if values.ndim < 2 or values.shape[0] != n:
            raise FuzzingError(
                f"{name} must be (n_inputs, …) with one row per input, "
                f"got {values.shape}"
            )
        block = self._allocate((n, self._top_n) + values.shape[1:], values.dtype)
        block[:, 0] = values
        return block

    # -- introspection ---------------------------------------------------
    @property
    def n_inputs(self) -> int:
        """Number of pooled inputs (rows)."""
        return int(self._data.shape[0])

    @property
    def top_n(self) -> int:
        """Pool capacity per input."""
        return self._top_n

    def count(self, i: int) -> int:
        """Number of live seeds for input *i*."""
        return int(self._counts[i])

    def seeds(self, i: int) -> np.ndarray:
        """Live seed data of input *i*, fittest first (array view)."""
        return self._data[i, : self._counts[i]]

    def fitness(self, i: int) -> np.ndarray:
        """Fitness of input *i*'s live seeds, fittest first."""
        return self._fitness[i, : self._counts[i]]

    def generations(self, i: int) -> np.ndarray:
        """Creation generation of input *i*'s live seeds."""
        return self._generations[i, : self._counts[i]]

    def accumulators(self, i: int) -> np.ndarray:
        """Stored accumulators of input *i*'s live seeds."""
        if self._accs is None:
            raise FuzzingError("pool was built without accumulator side arrays")
        return self._accs[i, : self._counts[i]]

    def levels(self, i: int) -> np.ndarray:
        """Stored quantised levels of input *i*'s live seeds."""
        if self._levels is None:
            raise FuzzingError("pool was built without level side arrays")
        return self._levels[i, : self._counts[i]]

    # -- Alg. 1 survival -------------------------------------------------
    def update(
        self,
        i: int,
        children: np.ndarray,
        scores: np.ndarray,
        *,
        generation: int,
        accumulators: np.ndarray | None = None,
        levels: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Replace input *i*'s pool with the top-N of *children*.

        Selection matches :meth:`SeedPool.update` exactly (stable
        descending sort, children fully replace parents); an empty
        candidate set keeps the current seeds, mirroring the sequential
        loop's "nothing survived the constraint" path.

        Returns the survivor selection — child indices, fittest first —
        or ``None`` when the pool was left untouched.  Member-sharded
        workers replay this order against their own per-member side
        arrays, so selection is computed once (parent-side, from the
        fitness scores) and survives identically in every process.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if len(children) != scores.shape[0]:
            raise FuzzingError(
                f"{len(children)} candidates but {scores.shape[0]} fitness scores"
            )
        if len(children) == 0:
            return None
        order = np.argsort(-scores, kind="stable")[: self._top_n]
        k = order.shape[0]
        self._data[i, :k] = children[order]
        self._fitness[i, :k] = scores[order]
        self._generations[i, :k] = generation
        self._counts[i] = k
        if self._accs is not None:
            if accumulators is None:
                raise FuzzingError("pool stores accumulators; update must supply them")
            self._accs[i, :k] = accumulators[order]
        if self._levels is not None:
            if levels is None:
                raise FuzzingError("pool stores levels; update must supply them")
            self._levels[i, :k] = levels[order]
        return order

    def __repr__(self) -> str:
        return (
            f"SeedPoolBatch(n_inputs={self.n_inputs}, top_n={self._top_n}, "
            f"delta={'on' if self._accs is not None else 'off'})"
        )
