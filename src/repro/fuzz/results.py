"""Result records for fuzzing runs and campaign-level aggregation.

These carry exactly the quantities the paper's evaluation reports:
per-success L1/L2 (Table II rows 1–2), iteration counts averaged over
*all* processed inputs (Table II row 3, ``#total iterations / #images``),
wall-clock extrapolated to 1000 generated images (row 4), and per-class
groupings (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.stats import group_means
from repro.metrics.timing import per_minute, per_thousand

__all__ = ["AdversarialExample", "InputOutcome", "CampaignResult"]


@dataclass(frozen=True)
class AdversarialExample:
    """A successful adversarial input with its provenance.

    Attributes
    ----------
    original:
        The unmodified input (image array or string).
    adversarial:
        The mutated input that flipped the prediction.
    reference_label:
        The model's prediction on *original* (the differential
        reference — not a ground-truth label).
    adversarial_label:
        The model's (different) prediction on *adversarial*.
    iterations:
        Fuzzing iterations consumed to find it.
    metrics:
        Perturbation measurements from the active constraint
        (``l1``/``l2``/``linf``/``l0`` for images, ``edits`` for text).
    strategy:
        Name of the mutation strategy that produced it.
    true_label:
        Optional ground-truth label, when the caller knows it (the
        defense retrains with correct labels, Sec. V-D).
    disagreed_members:
        For ensemble campaigns: indices of the members whose prediction
        left the reference (majority) label on this input — the
        cross-model debugging signal.  ``None`` for single-model
        campaigns.  ``iterations == 0`` marks a *seed discrepancy*: the
        members already disagreed before any mutation (original and
        adversarial payloads are then identical).
    """

    original: Any
    adversarial: Any
    reference_label: int
    adversarial_label: int
    iterations: int
    metrics: dict[str, float]
    strategy: str
    true_label: Optional[int] = None
    disagreed_members: Optional[tuple[int, ...]] = None

    @property
    def l1(self) -> float:
        """Normalized L1 distance (NaN for non-image domains)."""
        return self.metrics.get("l1", float("nan"))

    @property
    def l2(self) -> float:
        """Normalized L2 distance (NaN for non-image domains)."""
        return self.metrics.get("l2", float("nan"))


@dataclass(frozen=True)
class InputOutcome:
    """What happened to one original input (success or exhaustion)."""

    success: bool
    iterations: int
    reference_label: int
    example: Optional[AdversarialExample] = None

    def __post_init__(self) -> None:
        if self.success and self.example is None:
            raise ConfigurationError("successful outcome requires an example")
        if not self.success and self.example is not None:
            raise ConfigurationError("failed outcome cannot carry an example")


@dataclass
class CampaignResult:
    """Aggregated outcomes of fuzzing a set of inputs with one strategy.

    ``executor`` records which campaign executor produced the result
    (``"serial"``, ``"batched"``, ``"process"``); ``None`` means a direct
    :meth:`~repro.fuzz.fuzzer.HDTest.fuzz` call.  ``n_members`` is the
    prediction target's size: 1 for the paper's self-differential
    setting, K for cross-model ensemble campaigns.  ``telemetry`` is the
    campaign's :class:`~repro.obs.recorder.CampaignTelemetry` snapshot
    dict (counters, phase timings, retirement log) when the run was
    instrumented — ``None`` otherwise; process-pool campaigns carry the
    merged per-worker stream.
    """

    strategy: str
    outcomes: list[InputOutcome]
    elapsed_seconds: float
    guided: bool = True
    executor: Optional[str] = None
    n_members: int = 1
    telemetry: Optional[dict] = None

    # -- counts ------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        """Number of original inputs processed."""
        return len(self.outcomes)

    @property
    def n_success(self) -> int:
        """Number of adversarial examples found."""
        return sum(1 for o in self.outcomes if o.success)

    @property
    def success_rate(self) -> float:
        """Fraction of inputs for which an adversarial was found."""
        return self.n_success / self.n_inputs if self.outcomes else float("nan")

    @property
    def examples(self) -> list[AdversarialExample]:
        """All adversarial examples, in input order."""
        return [o.example for o in self.outcomes if o.example is not None]

    # -- Table II metrics -------------------------------------------------
    @property
    def avg_iterations(self) -> float:
        """``#total iterations / #images`` over *all* inputs (Sec. V-A)."""
        if not self.outcomes:
            return float("nan")
        return float(np.mean([o.iterations for o in self.outcomes]))

    @property
    def avg_l1(self) -> float:
        """Mean normalized L1 over successful adversarials."""
        values = [e.l1 for e in self.examples]
        return float(np.mean(values)) if values else float("nan")

    @property
    def avg_l2(self) -> float:
        """Mean normalized L2 over successful adversarials."""
        values = [e.l2 for e in self.examples]
        return float(np.mean(values)) if values else float("nan")

    @property
    def time_per_1k(self) -> float:
        """Extrapolated seconds per 1000 generated adversarials (row 4)."""
        if self.n_success == 0:
            return float("nan")
        return per_thousand(self.elapsed_seconds, self.n_success)

    @property
    def images_per_minute(self) -> float:
        """Extrapolated generation rate (the abstract's ≈400/minute)."""
        if self.elapsed_seconds <= 0:
            return float("nan")
        return per_minute(self.elapsed_seconds, self.n_success)

    # -- Fig. 7 per-class analysis ---------------------------------------
    def per_class(self, n_classes: int) -> dict[str, np.ndarray]:
        """Per-reference-class means of L1, L2 and iterations.

        Classes are the model's reference labels (its predictions on the
        original inputs), matching the paper's labeling-free setting.
        Iterations average over all inputs of the class; distances over
        its successes.  Empty classes yield NaN.
        """
        if n_classes < 1:
            raise ConfigurationError(f"n_classes must be >= 1, got {n_classes}")
        it_vals = [float(o.iterations) for o in self.outcomes]
        it_groups = [o.reference_label for o in self.outcomes]
        ex = self.examples
        return {
            "iterations": group_means(it_vals, it_groups, n_groups=n_classes),
            "l1": group_means(
                [e.l1 for e in ex], [e.reference_label for e in ex], n_groups=n_classes
            ),
            "l2": group_means(
                [e.l2 for e in ex], [e.reference_label for e in ex], n_groups=n_classes
            ),
        }

    # -- reporting ---------------------------------------------------------
    @property
    def seed_discrepancies(self) -> list[AdversarialExample]:
        """Ensemble examples found at iteration 0 (pre-mutation splits)."""
        return [e for e in self.examples if e.iterations == 0]

    def summary(self) -> dict[str, float]:
        """The Table II row for this strategy, as a dict."""
        return {
            "strategy": self.strategy,
            "guided": self.guided,
            "executor": self.executor,
            "n_members": self.n_members,
            "n_inputs": self.n_inputs,
            "n_success": self.n_success,
            "success_rate": self.success_rate,
            "avg_l1": self.avg_l1,
            "avg_l2": self.avg_l2,
            "avg_iterations": self.avg_iterations,
            "elapsed_seconds": self.elapsed_seconds,
            "time_per_1k": self.time_per_1k,
            "images_per_minute": self.images_per_minute,
        }

    def __repr__(self) -> str:
        return (
            f"CampaignResult(strategy={self.strategy!r}, n={self.n_inputs}, "
            f"success={self.n_success}, avg_iter={self.avg_iterations:.2f}, "
            f"elapsed={self.elapsed_seconds:.1f}s)"
        )
