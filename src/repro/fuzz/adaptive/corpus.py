"""The evolving seed corpus: dedup, re-entry, and L1-minimisation.

A fixed-pool campaign cycles the same originals forever; the corpus
instead treats the seed population as *state*.  Retired adversarials
(and their near-miss midpoints) re-enter as first-class seeds: they sit
on the decision boundary, so their mutants flip in very few iterations
— the main lever behind the adaptive campaign's
discrepancies-per-encode advantage (pinned by
``benchmarks/bench_adaptive_campaign.py``).  Content-hash dedup keeps
re-entry from flooding the pool with byte-identical payloads, and
:func:`minimize_l1` greedily shrinks a new adversarial's perturbation
before it is admitted, so the corpus stays close to the boundary
instead of drifting outward.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive_int

__all__ = ["Corpus", "CorpusEntry", "content_key", "minimize_l1"]

#: Re-entry origins a corpus entry can carry.
ORIGINS = ("seed", "adversarial", "near_miss")


def content_key(payload: Any) -> bytes:
    """A content hash identifying *payload* for dedup purposes.

    Arrays hash their dtype, shape, and raw bytes (two float images
    differing only in shape collide on neither); strings and bytes hash
    their encoded content.  Anything else falls back to ``repr`` —
    stable enough for the record-domain dicts the fuzzer feeds through.
    """
    h = hashlib.sha1()
    if isinstance(payload, np.ndarray):
        arr = np.ascontiguousarray(payload)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(payload, str):
        h.update(b"str:")
        h.update(payload.encode("utf-8"))
    elif isinstance(payload, bytes):
        h.update(b"bytes:")
        h.update(payload)
    else:
        h.update(repr(payload).encode("utf-8"))
    return h.digest()


@dataclass(frozen=True)
class CorpusEntry:
    """One seed in the evolving corpus.

    ``origin`` records how the payload got here: an original campaign
    input (``"seed"``), a retired adversarial re-entering
    (``"adversarial"``), or the midpoint between an adversarial and its
    original (``"near_miss"``).  ``true_label`` is inherited from the
    originating seed — the standard adversarial-example assumption that
    a budget-bounded perturbation preserves the ground truth.
    """

    payload: Any
    origin: str
    true_label: Optional[int] = None

    def __post_init__(self) -> None:
        if self.origin not in ORIGINS:
            raise ConfigurationError(
                f"origin must be one of {ORIGINS}, got {self.origin!r}"
            )


class Corpus:
    """An evolving, content-deduplicated seed pool.

    Seeded from the campaign's original inputs; :meth:`absorb` re-enters
    retired adversarials (optionally minimised, plus a near-miss
    midpoint).  :meth:`batch` serves cycling windows in insertion order,
    so two runs that absorb the same payloads in the same order schedule
    identical batches — the determinism the cross-executor
    reproducibility property rests on.

    Examples
    --------
    >>> corpus = Corpus([np.zeros(4), np.ones(4)])
    >>> len(corpus)
    2
    >>> corpus.add(np.zeros(4), origin="seed")  # byte-identical: rejected
    False
    """

    def __init__(
        self,
        inputs: Sequence[Any],
        true_labels: Optional[Sequence[int]] = None,
    ) -> None:
        if len(inputs) == 0:
            raise ConfigurationError("inputs is empty")
        if true_labels is not None and len(true_labels) != len(inputs):
            raise ConfigurationError(
                f"{len(true_labels)} true_labels for {len(inputs)} inputs"
            )
        self._entries: list[CorpusEntry] = []
        self._keys: set[bytes] = set()
        self._cursor = 0
        self.n_duplicates = 0  # payloads rejected by dedup
        for index, payload in enumerate(inputs):
            label = int(true_labels[index]) if true_labels is not None else None
            self.add(payload, origin="seed", true_label=label)

    # -- growth --------------------------------------------------------------
    def add(
        self,
        payload: Any,
        *,
        origin: str,
        true_label: Optional[int] = None,
    ) -> bool:
        """Admit *payload* unless a byte-identical entry already exists."""
        key = content_key(payload)
        if key in self._keys:
            self.n_duplicates += 1
            return False
        self._keys.add(key)
        self._entries.append(
            CorpusEntry(payload=payload, origin=origin, true_label=true_label)
        )
        return True

    def absorb(
        self,
        example: Any,
        *,
        predicate: Optional[Callable[[Any], bool]] = None,
        max_queries: int = 16,
    ) -> int:
        """Re-enter a retired adversarial (and its near-miss) as seeds.

        *example* is an
        :class:`~repro.fuzz.results.AdversarialExample`.  With a
        *predicate* (``candidate -> still a discrepancy``) the
        adversarial payload is first greedily L1-minimised against it;
        array domains additionally admit the original↔adversarial
        midpoint as a ``near_miss`` seed.  Returns the number of entries
        actually admitted (dedup may reject both).
        """
        payload = example.adversarial
        is_array = isinstance(payload, np.ndarray) and isinstance(
            example.original, np.ndarray
        )
        if is_array and predicate is not None:
            payload, _ = minimize_l1(
                example.original, payload, predicate, max_queries=max_queries
            )
        admitted = int(
            self.add(payload, origin="adversarial", true_label=example.true_label)
        )
        if is_array:
            near_miss = example.original + 0.5 * (payload - example.original)
            admitted += int(
                self.add(near_miss, origin="near_miss", true_label=example.true_label)
            )
        return admitted

    # -- scheduling ----------------------------------------------------------
    def batch(self, size: int) -> list[CorpusEntry]:
        """The next *size* entries, cycling in insertion order.

        Entries absorbed mid-campaign join the rotation the next time
        the cursor wraps past them; the cursor advances monotonically so
        every entry keeps getting scheduled.
        """
        size = check_positive_int(size, "size")
        picked = [
            self._entries[(self._cursor + j) % len(self._entries)]
            for j in range(size)
        ]
        self._cursor = (self._cursor + size) % len(self._entries)
        return picked

    # -- reading -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[CorpusEntry]:
        """All entries, in insertion order (a copy)."""
        return list(self._entries)

    def count(self, origin: str) -> int:
        """Number of entries with the given *origin*."""
        if origin not in ORIGINS:
            raise ConfigurationError(
                f"origin must be one of {ORIGINS}, got {origin!r}"
            )
        return sum(1 for entry in self._entries if entry.origin == origin)

    def snapshot(self) -> dict:
        """Corpus composition as a JSON-ready dict."""
        return {
            "size": len(self._entries),
            "seeds": self.count("seed"),
            "adversarial": self.count("adversarial"),
            "near_miss": self.count("near_miss"),
            "duplicates_rejected": self.n_duplicates,
        }

    def __repr__(self) -> str:
        return (
            f"Corpus(size={len(self._entries)}, "
            f"adversarial={self.count('adversarial')}, "
            f"near_miss={self.count('near_miss')})"
        )


def minimize_l1(
    original: np.ndarray,
    adversarial: np.ndarray,
    predicate: Callable[[np.ndarray], bool],
    *,
    max_queries: int = 16,
    n_blocks: int = 8,
) -> tuple[np.ndarray, int]:
    """Greedily shrink an adversarial perturbation's L1 norm.

    Two deterministic phases, both keeping ``predicate(candidate)``
    true throughout (the candidate must *stay* a discrepancy):

    1. binary search on a global scale of the perturbation — the
       cheapest big win, since discrepancies usually survive well below
       the mutation budget that found them;
    2. greedy zeroing of coordinate blocks, smallest |delta| first —
       trimming incidental noise the scale search cannot reach.

    Returns ``(minimised_payload, n_queries)``; at most *max_queries*
    predicate calls are spent, and the input *adversarial* is returned
    unchanged when nothing smaller survives.  No randomness — repeated
    calls are bit-identical, preserving campaign reproducibility.
    """
    check_positive_int(n_blocks, "n_blocks")
    if max_queries < 0:
        raise ConfigurationError(f"max_queries must be >= 0, got {max_queries}")
    delta = adversarial.astype(np.float64, copy=True) - original
    if not np.any(delta) or max_queries == 0:
        return adversarial, 0
    queries = 0
    best = adversarial
    # Phase 1: global scale. Half the query budget, at most 6 halvings
    # (resolution 1/64 of the original perturbation is plenty).
    lo, hi = 0.0, 1.0
    for _ in range(min(6, max_queries // 2)):
        mid = (lo + hi) / 2.0
        candidate = (original + mid * delta).astype(adversarial.dtype, copy=False)
        queries += 1
        if predicate(candidate):
            hi = mid
            best = candidate
        else:
            lo = mid
    # Phase 2: zero blocks of the surviving delta, smallest first.
    current = best.astype(np.float64, copy=True) - original
    flat = current.ravel()
    nonzero = np.flatnonzero(flat)
    order = nonzero[np.argsort(np.abs(flat[nonzero]), kind="stable")]
    for block in np.array_split(order, min(n_blocks, len(order)) or 1):
        if queries >= max_queries or len(block) == 0:
            break
        trial = flat.copy()
        trial[block] = 0.0
        if not np.any(trial):
            break  # zeroing everything is the original, never a discrepancy
        candidate = (original + trial.reshape(current.shape)).astype(
            adversarial.dtype, copy=False
        )
        queries += 1
        if predicate(candidate):
            flat = trial
            best = candidate
    return best, queries
