"""Thompson-sampling bandit over mutation strategies.

Each arm is a mutation strategy; the class itself is a plain
Beta-Bernoulli bandit and does not care what a "trial" is.  The
adaptive driver spends one trial per unit of requested encode work and
one success per retirement, so the posterior each arm carries is the
discrepancies-per-encode rate the campaign optimises — and the reward
signal is free (the engines already count both per block).  A
retirement-*rate* reward would be blind to cost: a strategy that
retires often while flooding the encoder with children looks great by
rate and terrible by yield.  Thompson sampling allocates the
next block by sampling one plausible retirement rate per arm from its
Beta posterior and playing the argmax: early on the wide priors explore
every strategy, and as evidence accumulates the allocation concentrates
on whichever strategy is actually retiring inputs on *this* model —
Table II shows that differs wildly across models, which is why a fixed
choice leaves yield on the table.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["ThompsonBandit"]


class ThompsonBandit:
    """Beta-Bernoulli Thompson sampling over named arms.

    Parameters
    ----------
    arms:
        Arm names (mutation strategy names), unique and non-empty.
    prior:
        ``(alpha, beta)`` pseudo-counts every arm starts from.  The
        default ``(1, 1)`` is the uniform prior; larger values slow the
        concentration down (more exploration).

    Examples
    --------
    >>> bandit = ThompsonBandit(["gauss", "shift"])
    >>> bandit.update("gauss", successes=8, trials=10)
    >>> bandit.update("shift", successes=1, trials=10)
    >>> bandit.posterior_mean("gauss") > bandit.posterior_mean("shift")
    True
    """

    def __init__(
        self,
        arms: Iterable[str],
        *,
        prior: tuple[float, float] = (1.0, 1.0),
    ) -> None:
        arms = list(arms)
        if not arms:
            raise ConfigurationError("bandit needs at least one arm")
        if len(set(arms)) != len(arms):
            raise ConfigurationError(f"duplicate arms in {arms}")
        alpha0, beta0 = float(prior[0]), float(prior[1])
        if alpha0 <= 0 or beta0 <= 0:
            raise ConfigurationError(
                f"prior pseudo-counts must be > 0, got {prior}"
            )
        self._arms = tuple(arms)
        self._alpha = {arm: alpha0 for arm in arms}
        self._beta = {arm: beta0 for arm in arms}

    @property
    def arms(self) -> tuple[str, ...]:
        """Arm names, in construction order."""
        return self._arms

    # -- learning ------------------------------------------------------------
    def update(self, arm: str, *, successes: int, trials: int) -> None:
        """Fold one block's outcome into *arm*'s posterior.

        *trials* Bernoulli trials were spent on the arm and *successes*
        of them paid off (so ``successes <= trials``); the caller picks
        the trial currency — the adaptive driver uses requested encode
        work.
        """
        self._check_arm(arm)
        if trials < 0 or not 0 <= successes <= trials:
            raise ConfigurationError(
                f"need 0 <= successes <= trials, got {successes}/{trials}"
            )
        self._alpha[arm] += successes
        self._beta[arm] += trials - successes

    # -- allocation ----------------------------------------------------------
    def sample(self, rng: RngLike = None) -> str:
        """One Thompson draw: the argmax arm over posterior samples.

        Always draws exactly ``len(arms)`` Beta variates from *rng* in
        arm order, so the generator advances identically regardless of
        which arm wins — schedulers built on this stay reproducible.
        """
        generator = ensure_rng(rng)
        draws = [
            generator.beta(self._alpha[arm], self._beta[arm])
            for arm in self._arms
        ]
        return self._arms[int(np.argmax(draws))]

    def allocate(self, n_blocks: int, rng: RngLike = None) -> list[str]:
        """*n_blocks* independent Thompson draws (one arm name each)."""
        check_positive_int(n_blocks, "n_blocks")
        generator = ensure_rng(rng)
        return [self.sample(generator) for _ in range(n_blocks)]

    # -- reading -------------------------------------------------------------
    def posterior_mean(self, arm: str) -> float:
        """The arm's posterior-mean retirement probability."""
        self._check_arm(arm)
        return self._alpha[arm] / (self._alpha[arm] + self._beta[arm])

    def best_arm(self) -> str:
        """The arm with the highest posterior mean (first wins ties)."""
        means = [self.posterior_mean(arm) for arm in self._arms]
        return self._arms[int(np.argmax(means))]

    def snapshot(self) -> dict:
        """Posterior state as a JSON-ready dict (per arm: α, β, mean)."""
        return {
            arm: {
                "alpha": self._alpha[arm],
                "beta": self._beta[arm],
                "mean": self.posterior_mean(arm),
            }
            for arm in self._arms
        }

    def _check_arm(self, arm: str) -> None:
        if arm not in self._alpha:
            raise ConfigurationError(
                f"unknown arm {arm!r}; have {list(self._arms)}"
            )

    def __repr__(self) -> str:
        means = ", ".join(
            f"{arm}={self.posterior_mean(arm):.3f}" for arm in self._arms
        )
        return f"ThompsonBandit({means})"
