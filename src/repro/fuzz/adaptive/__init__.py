"""Adaptive campaigns: an evolving corpus + a strategy bandit.

The fixed campaigns in :mod:`repro.fuzz.campaign` spend a fixed budget
on one hand-picked mutation strategy over a static input pool — yet
Table II shows discrepancy yield varies wildly across strategies and
models, and every retired adversarial is a boundary-hugging seed the
static pool throws away.  This package closes both loops:

* :class:`~repro.fuzz.adaptive.corpus.Corpus` — the seed pool as
  evolving state: retired adversarials (greedily L1-minimised) and
  their near-miss midpoints re-enter as seeds, content-hash
  deduplicated.
* :class:`~repro.fuzz.adaptive.bandit.ThompsonBandit` — Beta-Bernoulli
  Thompson sampling over mutation strategies, rewarded by retirements
  per unit of requested encode work — the free signal every block
  already produces, and the one that actually prices an arm (a
  strategy that retires often but floods the encoder is a bad deal).
* :func:`~repro.fuzz.adaptive.driver.run_adaptive_campaign` — the wave
  driver wiring both through any
  :class:`~repro.fuzz.executor.CampaignExecutor`.

Design lineage: this is HypoFuzz's corpus/bayes split transplanted onto
HDTest.  HypoFuzz keeps a content-addressed ``corpus.py`` pool of
minimal covering examples — every newly-covering input is shrunk, keyed
by a stable hash, and becomes a mutation seed — while ``bayes.py``
treats "which target do I fuzz next" as a Bayesian decision problem,
scoring each candidate by its estimated marginal payoff and spending
the next block of iterations where the posterior says it pays.  Our
:class:`Corpus` plays the first role with discrepancies standing in for
coverage (admission = retired a discrepancy, shrinking = greedy
L1-minimisation, identity = content hash); our
:class:`ThompsonBandit` plays the second with mutation strategies as
the candidates and retirement-per-encode as the payoff, sampled rather
than point-estimated so exploration never fully stops.
"""

from repro.fuzz.adaptive.bandit import ThompsonBandit
from repro.fuzz.adaptive.corpus import Corpus, CorpusEntry, content_key, minimize_l1
from repro.fuzz.adaptive.driver import (
    DEFAULT_ARMS,
    SCHEDULES,
    AdaptiveCampaignResult,
    run_adaptive_campaign,
)

__all__ = [
    "AdaptiveCampaignResult",
    "Corpus",
    "CorpusEntry",
    "DEFAULT_ARMS",
    "SCHEDULES",
    "ThompsonBandit",
    "content_key",
    "minimize_l1",
    "run_adaptive_campaign",
]
