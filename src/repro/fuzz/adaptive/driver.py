"""The adaptive campaign driver: corpus + bandit over any executor.

:func:`run_adaptive_campaign` closes the loop the fixed-strategy
campaigns leave open: instead of spending a fixed budget on one
hand-picked strategy over a static pool, each wave (1) asks the
:class:`~repro.fuzz.adaptive.bandit.ThompsonBandit` how to split its
iteration blocks across mutation strategies, (2) draws each block's
seeds from the evolving :class:`~repro.fuzz.adaptive.corpus.Corpus`,
(3) runs the block through whichever
:class:`~repro.fuzz.executor.CampaignExecutor` the caller picked, and
(4) feeds the block's retirements back into both: the bandit's
posterior and — minimised — the corpus.

Reproducibility: the scheduler draws (bandit Beta samples, per-block
seed derivation) come from one root generator that advances identically
whatever the executor, and every block hands the executor a *fresh*
generator built from a derived seed — so the batched and process
schedules produce bit-identical campaigns from one seed (the serial
executor threads its own historical stream; it is reproducible
run-to-run but not bit-identical to the vectorized schedules, exactly
as for fixed campaigns).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz.adaptive.bandit import ThompsonBandit
from repro.fuzz.adaptive.corpus import Corpus
from repro.fuzz.campaign import (
    ExecutorLike,
    TelemetryLike,
    _campaign_telemetry,
    _resolve_backend,
    _resolve_executor,
)
from repro.fuzz.fuzzer import HDTestConfig
from repro.fuzz.mutations import MutationStrategy, create_strategy
from repro.fuzz.results import AdversarialExample
from repro.fuzz.targets import resolve_target
from repro.obs.recorder import CampaignTelemetry, Stopwatch
from repro.utils.rng import RngLike, derive_seed, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["AdaptiveCampaignResult", "run_adaptive_campaign"]

#: Allocation schedules the driver understands.
SCHEDULES = ("thompson", "uniform")

#: Default strategy arms (`--strategies` default in the CLI too).
DEFAULT_ARMS = ("gauss", "rand", "shift")


@dataclass
class AdaptiveCampaignResult:
    """What an adaptive campaign produced, learned, and spent.

    ``allocation`` is the per-wave trace — one record per wave with the
    inputs scheduled and retired per arm — which the benchmark stores in
    its BENCH JSON and ``hdtest report`` renders as the allocation
    table.  ``attempts`` counts scheduled inputs (trials), ``n_found``
    every discrepancy observed including surplus beyond ``n_target``.
    """

    examples: list[AdversarialExample]
    elapsed_seconds: float
    attempts: int
    n_found: int
    schedule: str
    arms: tuple[str, ...]
    allocation: list[dict] = field(default_factory=list)
    bandit: dict = field(default_factory=dict)
    corpus: dict = field(default_factory=dict)
    telemetry: Optional[dict] = None
    executor: Optional[str] = None

    @property
    def n_examples(self) -> int:
        return len(self.examples)

    @property
    def encodes(self) -> int:
        """Hypervector blocks computed: children, seed references, and
        minimisation probes — the full encode bill the yield metric
        divides by."""
        if self.telemetry is None:
            return 0
        counters = self.telemetry.get("counters", {})
        return int(counters.get("encodes", 0) + counters.get("seed_encodes", 0))

    @property
    def discrepancies_per_encode(self) -> float:
        """The yield metric the bandit optimises for, campaign-wide."""
        return self.n_found / self.encodes if self.encodes else float("nan")

    def best_arm(self) -> str:
        """Arm with the highest posterior-mean retirement rate."""
        return max(self.bandit, key=lambda arm: self.bandit[arm]["mean"])

    def summary(self) -> dict:
        """JSON-ready campaign summary (the ``campaign_end`` payload)."""
        return {
            "schedule": self.schedule,
            "executor": self.executor,
            "n_examples": self.n_examples,
            "n_found": self.n_found,
            "attempts": self.attempts,
            "waves": len(self.allocation),
            "encodes": self.encodes,
            "discrepancies_per_encode": self.discrepancies_per_encode,
            "elapsed_seconds": self.elapsed_seconds,
            "best_arm": self.best_arm() if self.bandit else None,
            "bandit": self.bandit,
            "corpus": self.corpus,
        }

    def __repr__(self) -> str:
        return (
            f"AdaptiveCampaignResult(n={self.n_examples}, "
            f"attempts={self.attempts}, waves={len(self.allocation)}, "
            f"schedule={self.schedule!r})"
        )


def _discrepancy_predicate(target, example, rec: CampaignTelemetry):
    """``candidate -> still a discrepancy`` for L1-minimisation.

    A candidate keeps the discrepancy when the target's members disagree
    among themselves (the ensemble oracle's signal) or the lead member's
    label still differs from the example's reference label (the
    self-differential signal).  Every query is charged to the campaign
    recorder — minimisation encodes are real encodes, and the
    discrepancies-per-encode metric must not get them for free.
    """

    def predicate(candidate) -> bool:
        rec.count("minimize_queries")
        # Balanced exactly like an engine child encode (request +
        # actual), so the cache-hit arithmetic and the bandit's
        # request-based cost both see the probe.
        rec.count("encode_requests", target.n_encode_blocks)
        rec.count("encoded_children", target.n_encode_blocks)
        rec.count("encodes", target.n_encode_blocks)
        rec.count("am_queries", target.n_members)
        labels = target.predict([candidate])[:, 0]
        if np.unique(labels).size > 1:
            return True
        return int(labels[0]) != example.reference_label

    return predicate


def run_adaptive_campaign(
    model: Any,
    inputs: Sequence[Any],
    n_target: int,
    *,
    strategies: Iterable[Union[str, MutationStrategy]] = DEFAULT_ARMS,
    schedule: str = "thompson",
    evolve_corpus: bool = True,
    minimize: bool = True,
    strict: bool = True,
    block_size: int = 16,
    probe_size: Optional[int] = None,
    blocks_per_wave: Optional[int] = None,
    prior: tuple[float, float] = (1.0, 1.0),
    domain: Any = None,
    true_labels: Optional[Sequence[int]] = None,
    config: Optional[HDTestConfig] = None,
    constraint: Any = None,
    oracle: Any = None,
    fitness: Any = None,
    rng: RngLike = None,
    max_attempts_factor: int = 20,
    executor: ExecutorLike = "batched",
    backend: Optional[str] = None,
    telemetry: TelemetryLike = None,
) -> AdaptiveCampaignResult:
    """Fuzz until *n_target* discrepancies, scheduling blocks adaptively.

    Parameters
    ----------
    strategies:
        The bandit's arms — strategy names or instances sharing one
        domain namespace (``hdtest fuzz --adaptive --strategies
        gauss,rand,shift``).
    schedule:
        ``"thompson"`` allocates each wave's blocks by Thompson
        sampling; ``"uniform"`` round-robins the arms (the baseline the
        benchmark compares against).  Both consume identical scheduler
        randomness, so flipping the knob isolates the bandit's
        contribution.
    evolve_corpus:
        Re-enter retired adversarials (and near-miss midpoints) as
        seeds.  ``False`` keeps the pool static — with
        ``schedule="uniform"`` that reduces to a fixed uniform mix.
    minimize:
        Greedily L1-minimise adversarials before corpus re-entry
        (array domains only; the model queries this spends are charged
        to the campaign's encode counters).  Adversarials retired in a
        single iteration are admitted as-is — they were born one
        mutation from a corpus seed, so there is nothing left to shave
        and the queries would be pure overhead.
    strict:
        ``True`` (default) raises :class:`~repro.errors.FuzzingError`
        when the attempt budget runs out short of *n_target*;
        ``False`` returns the partial campaign instead — what the
        benchmark's budget-capped baselines need, since a hopeless
        fixed arm may never get there.
    block_size:
        Inputs per scheduled block — the bandit's decision granularity.
    probe_size:
        Inputs in an arm's *first* block (default 1).  A strategy's
        cost per input is unknown until it has run once, and a single
        full block of an encode-hungry arm can cost more than a whole
        campaign on a cheap one — so every arm gets a cheap probe
        before the bandit commits full blocks.  One input is enough:
        the probe's encode bill lands in the posterior's trial count,
        which is what demotes an expensive arm.
    blocks_per_wave:
        Blocks allocated per wave; default one per arm.
    prior:
        Beta pseudo-counts each arm starts from.
    executor:
        Any campaign executor (name or instance); the default batched
        schedule is right for the block sizes involved.  Note a
        :class:`~repro.fuzz.executor.ProcessExecutor` re-keys its pool
        when the strategy object changes, so blocks are grouped by arm
        within each wave to broadcast at most once per arm per wave.
    telemetry:
        Optional sink (see :func:`~repro.fuzz.campaign.compare_strategies`);
        an internal recorder is used when absent so the result always
        carries encode/retirement accounting.  Telemetry never touches
        the RNG — outcomes are bit-identical with it on or off.

    Returns
    -------
    AdaptiveCampaignResult
        Exactly *n_target* examples (surplus discrepancies are absorbed
        into the corpus and counted in ``n_found``), plus the
        allocation trace, posterior, and corpus composition.

    Raises
    ------
    FuzzingError
        When ``max_attempts_factor * n_target`` scheduled inputs run out
        before *n_target* discrepancies are found (``strict=True`` only).
    """
    n_target = check_positive_int(n_target, "n_target")
    block_size = check_positive_int(block_size, "block_size")
    if probe_size is None:
        probe_size = 1
    probe_size = check_positive_int(probe_size, "probe_size")
    if schedule not in SCHEDULES:
        raise ConfigurationError(
            f"schedule must be one of {SCHEDULES}, got {schedule!r}"
        )
    strategy_objs = [
        s if isinstance(s, MutationStrategy) else create_strategy(s)
        for s in strategies
    ]
    if not strategy_objs:
        raise ConfigurationError("strategies is empty")
    names = [s.name for s in strategy_objs]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate strategies in {names}")
    namespaces = {s.domain for s in strategy_objs}
    if len(namespaces) > 1:
        raise ConfigurationError(
            f"strategies span multiple domains {sorted(namespaces)}; "
            "fuzz one modality per campaign"
        )
    by_name = dict(zip(names, strategy_objs))
    if blocks_per_wave is None:
        blocks_per_wave = len(names)
    blocks_per_wave = check_positive_int(blocks_per_wave, "blocks_per_wave")

    generator = ensure_rng(rng)
    model = _resolve_backend(model, backend)
    target = resolve_target(model)
    # ``None`` means "pick for me": unlike the fixed campaigns there is
    # no historical serial loop to preserve here, so default to batched.
    exec_obj, owns_executor = _resolve_executor(executor or "batched")
    obs, session = _campaign_telemetry(
        telemetry,
        "adaptive",
        strategies=list(names),
        schedule=schedule,
        executor=exec_obj.name,
        n_target=n_target,
    )
    rec = obs if obs is not None else CampaignTelemetry(label="adaptive")
    mark = rec.marker()

    corpus = Corpus(inputs, true_labels)
    bandit = ThompsonBandit(names, prior=prior)
    max_attempts = max_attempts_factor * n_target
    examples: list[AdversarialExample] = []
    allocation_trace: list[dict] = []
    attempts = 0
    n_found = 0
    round_robin = 0  # uniform schedule's rotating cursor
    seen_arms: set[str] = set()  # arms past their first (probe) block

    try:
        with Stopwatch() as sw:
            while len(examples) < n_target:
                if schedule == "thompson":
                    drawn = bandit.allocate(blocks_per_wave, generator)
                else:
                    drawn = [
                        names[(round_robin + j) % len(names)]
                        for j in range(blocks_per_wave)
                    ]
                    round_robin = (round_robin + blocks_per_wave) % len(names)
                wave = {
                    "wave": len(allocation_trace),
                    "scheduled": {},
                    "retired": {},
                    "encode_work": {},
                }
                # Blocks grouped per arm, visited in arm order: one
                # executor call per arm per wave (a process pool then
                # re-broadcasts at most once per arm), and a stable
                # visit order whatever the draw order was.
                for arm in names:
                    n_blocks = drawn.count(arm)
                    if n_blocks == 0:
                        continue
                    # First contact with an arm is a probe, whatever
                    # the draw said: its cost per input is unknown.
                    if arm not in seen_arms:
                        quota = min(probe_size, block_size)
                        seen_arms.add(arm)
                    else:
                        quota = n_blocks * block_size
                    n_sched = min(quota, max_attempts - attempts)
                    if n_sched == 0:
                        break
                    entries = corpus.batch(n_sched)
                    block_rng = np.random.default_rng(derive_seed(generator))
                    block_mark = rec.marker()
                    result = exec_obj.run(
                        model, by_name[arm], [e.payload for e in entries],
                        domain=domain, config=config, constraint=constraint,
                        fitness=fitness, oracle=oracle, rng=block_rng,
                        telemetry=rec,
                    )
                    attempts += n_sched
                    retired = 0
                    for position, outcome in enumerate(result.outcomes):
                        if not outcome.success:
                            continue
                        retired += 1
                        example = outcome.example
                        label = entries[position].true_label
                        if label is not None:
                            example = replace(example, true_label=label)
                        examples.append(example)
                        if evolve_corpus:
                            # One-iteration retirements were born a
                            # single mutation from a corpus seed —
                            # already minimal, skip the probe budget.
                            predicate = (
                                _discrepancy_predicate(target, example, rec)
                                if minimize and example.iterations > 1
                                else None
                            )
                            corpus.absorb(example, predicate=predicate)
                    n_found += retired
                    # Reward basis: retirements per unit of *requested*
                    # encode work.  Requests (plus seed encodes and the
                    # minimisation probes charged above) are derived
                    # from the per-input mutation streams alone, so the
                    # posterior — and hence the allocation — stays
                    # bit-identical across executors and batch sizes,
                    # where post-dedupe ``encodes`` would wobble with
                    # cache eviction order.
                    block_counters = rec.since(block_mark).get("counters", {})
                    spent = int(
                        block_counters.get("encode_requests", 0)
                        + block_counters.get("seed_encodes", 0)
                    )
                    bandit.update(
                        arm, successes=retired, trials=max(spent, retired, 1)
                    )
                    rec.record_arm_block(arm, scheduled=n_sched, retired=retired)
                    wave["scheduled"][arm] = n_sched
                    wave["retired"][arm] = retired
                    wave["encode_work"][arm] = spent
                allocation_trace.append(wave)
                rec.heartbeat()
                if len(examples) < n_target and attempts >= max_attempts:
                    if not strict:
                        break
                    raise FuzzingError(
                        f"only {len(examples)}/{n_target} adversarials after "
                        f"{attempts} attempts — raise the budget, add arms, "
                        "or weaken the model"
                    )
    finally:
        if owns_executor:
            exec_obj.close()

    result = AdaptiveCampaignResult(
        examples=examples[:n_target],
        elapsed_seconds=sw.elapsed,
        attempts=attempts,
        n_found=n_found,
        schedule=schedule,
        arms=tuple(names),
        allocation=allocation_trace,
        bandit=bandit.snapshot(),
        corpus=corpus.snapshot(),
        telemetry=rec.since(mark),
        executor=exec_obj.name,
    )
    if session is not None:
        session.finish(obs, summary=result.summary())
    return result
