"""HDTest: guided differential fuzz testing of HDC models (Sec. IV)."""

from repro.fuzz.batch import BatchedHDTest
from repro.fuzz.campaign import (
    TABLE2_STRATEGIES,
    compare_strategies,
    generate_adversarial_set,
)
from repro.fuzz.executor import (
    BatchedExecutor,
    CampaignExecutor,
    ProcessExecutor,
    SerialExecutor,
    create_executor,
    executor_names,
)
from repro.fuzz.constraints import (
    Constraint,
    ImageConstraint,
    NullConstraint,
    RecordConstraint,
    TextConstraint,
)
from repro.fuzz.coverage import CoverageGuidedFitness, CoverageMap
from repro.fuzz.fitness import (
    DistanceGuidedFitness,
    FitnessFunction,
    MarginFitness,
    RandomFitness,
)
from repro.fuzz.fuzzer import HDTest, HDTestConfig
from repro.fuzz.mutations import (
    CharSubstitution,
    CharTransposition,
    ColRandom,
    GaussianNoise,
    JointStrategy,
    MutationStrategy,
    RandomNoise,
    RecordBandNoise,
    RecordGaussianNoise,
    RecordRandomNoise,
    RecordShift,
    RowColRandom,
    RowRandom,
    Shift,
    create_strategy,
    strategy_names,
)
from repro.fuzz.oracle import DifferentialOracle, TargetedOracle
from repro.fuzz.serialization import (
    campaign_to_dict,
    load_campaigns_json,
    save_campaigns_json,
)
from repro.fuzz.results import AdversarialExample, CampaignResult, InputOutcome
from repro.fuzz.seeds import Seed, SeedPool, SeedPoolBatch

__all__ = [
    "AdversarialExample",
    "BatchedExecutor",
    "BatchedHDTest",
    "CampaignExecutor",
    "CampaignResult",
    "CharSubstitution",
    "CharTransposition",
    "ColRandom",
    "Constraint",
    "CoverageGuidedFitness",
    "CoverageMap",
    "DifferentialOracle",
    "DistanceGuidedFitness",
    "FitnessFunction",
    "GaussianNoise",
    "HDTest",
    "HDTestConfig",
    "ImageConstraint",
    "InputOutcome",
    "JointStrategy",
    "MarginFitness",
    "MutationStrategy",
    "NullConstraint",
    "ProcessExecutor",
    "RandomFitness",
    "RandomNoise",
    "RecordBandNoise",
    "RecordConstraint",
    "RecordGaussianNoise",
    "RecordRandomNoise",
    "RecordShift",
    "RowColRandom",
    "RowRandom",
    "Seed",
    "SeedPool",
    "SeedPoolBatch",
    "SerialExecutor",
    "Shift",
    "TABLE2_STRATEGIES",
    "TargetedOracle",
    "TextConstraint",
    "campaign_to_dict",
    "compare_strategies",
    "create_executor",
    "create_strategy",
    "executor_names",
    "generate_adversarial_set",
    "load_campaigns_json",
    "save_campaigns_json",
    "strategy_names",
]
