"""Campaign runners: multi-strategy comparisons and fixed-count generation.

Two workflows from the paper's evaluation:

* :func:`compare_strategies` — one :class:`~repro.fuzz.results.CampaignResult`
  per strategy over the same input set (Table II, Fig. 7).
* :func:`generate_adversarial_set` — keep fuzzing (cycling through a
  pool of inputs) until exactly *n* adversarial examples exist, with
  ground-truth labels attached; this is the "generate 1000 adversarial
  images" step of the defense case study (Sec. V-D) and of the
  time-per-1K measurements.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz.constraints import Constraint
from repro.fuzz.fuzzer import HDTest, HDTestConfig
from repro.fuzz.mutations import MutationStrategy
from repro.fuzz.results import AdversarialExample, CampaignResult
from repro.hdc.model import HDCClassifier
from repro.metrics.timing import Stopwatch
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["compare_strategies", "generate_adversarial_set"]

#: The four strategies Table II evaluates.
TABLE2_STRATEGIES = ("gauss", "rand", "row_col_rand", "shift")


def compare_strategies(
    model: HDCClassifier,
    inputs: Sequence[Any],
    strategies: Iterable[Union[str, MutationStrategy]] = TABLE2_STRATEGIES,
    *,
    config: Optional[HDTestConfig] = None,
    constraint: Optional[Constraint] = None,
    rng: RngLike = None,
) -> dict[str, CampaignResult]:
    """Fuzz the same inputs under each strategy (Table II's experiment).

    Each strategy gets an independent child generator derived from
    *rng*, so results are reproducible yet decorrelated.
    """
    generator = ensure_rng(rng)
    results: dict[str, CampaignResult] = {}
    for strategy in strategies:
        fuzzer = HDTest(
            model,
            strategy,
            config=config,
            constraint=constraint,
            rng=generator,
        )
        result = fuzzer.fuzz(inputs)
        if result.strategy in results:
            raise ConfigurationError(f"duplicate strategy {result.strategy!r}")
        results[result.strategy] = result
    return results


def generate_adversarial_set(
    model: HDCClassifier,
    inputs: Sequence[Any],
    n_target: int,
    *,
    strategy: Union[str, MutationStrategy] = "gauss",
    true_labels: Optional[Sequence[int]] = None,
    config: Optional[HDTestConfig] = None,
    constraint: Optional[Constraint] = None,
    rng: RngLike = None,
    max_attempts_factor: int = 20,
) -> tuple[list[AdversarialExample], float]:
    """Fuzz until *n_target* adversarial examples are collected.

    Inputs are visited in order and recycled (with fresh mutation
    randomness) as many times as needed; a hard cap of
    ``max_attempts_factor * n_target`` attempts guards against a model
    too robust for the chosen strategy/budget.

    Parameters
    ----------
    true_labels:
        Optional ground-truth labels aligned with *inputs*; attached to
        each example so the defense can retrain "with correct labels".

    Returns
    -------
    (examples, elapsed_seconds):
        Exactly *n_target* examples and the wall-clock spent.
    """
    n_target = check_positive_int(n_target, "n_target")
    if len(inputs) == 0:
        raise ConfigurationError("inputs is empty")
    if true_labels is not None and len(true_labels) != len(inputs):
        raise ConfigurationError(
            f"{len(true_labels)} true_labels for {len(inputs)} inputs"
        )
    generator = ensure_rng(rng)
    fuzzer = HDTest(model, strategy, config=config, constraint=constraint, rng=generator)

    examples: list[AdversarialExample] = []
    attempts = 0
    max_attempts = max_attempts_factor * n_target
    with Stopwatch() as sw:
        while len(examples) < n_target:
            index = attempts % len(inputs)
            outcome = fuzzer.fuzz_one(inputs[index])
            attempts += 1
            if outcome.success:
                example = outcome.example
                if true_labels is not None:
                    example = AdversarialExample(
                        original=example.original,
                        adversarial=example.adversarial,
                        reference_label=example.reference_label,
                        adversarial_label=example.adversarial_label,
                        iterations=example.iterations,
                        metrics=example.metrics,
                        strategy=example.strategy,
                        true_label=int(true_labels[index]),
                    )
                examples.append(example)
            if attempts >= max_attempts:
                raise FuzzingError(
                    f"only {len(examples)}/{n_target} adversarials after "
                    f"{attempts} attempts — raise the budget or weaken the model"
                )
    return examples, sw.elapsed
