"""Campaign runners: multi-strategy comparisons and fixed-count generation.

Two workflows from the paper's evaluation:

* :func:`compare_strategies` — one :class:`~repro.fuzz.results.CampaignResult`
  per strategy over the same input set (Table II, Fig. 7).
* :func:`generate_adversarial_set` — keep fuzzing (cycling through a
  pool of inputs) until exactly *n* adversarial examples exist, with
  ground-truth labels attached; this is the "generate 1000 adversarial
  images" step of the defense case study (Sec. V-D) and of the
  time-per-1K measurements.

Both accept an ``executor`` (name or
:class:`~repro.fuzz.executor.CampaignExecutor`) selecting how the
campaign is scheduled: the paper-literal serial loop, the lock-step
batched engine, or a process pool.  ``None`` keeps the historical
serial *scheduling* (input-at-a-time ``HDTest``); note that
:func:`compare_strategies` now derives an independent generator per
strategy even on that path — the decorrelation its docstring always
promised — so its per-strategy streams intentionally differ from the
pre-fix implementation that shared one generator.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz.constraints import Constraint
from repro.fuzz.domains import FuzzDomain
from repro.fuzz.executor import CampaignExecutor, create_executor
from repro.fuzz.fuzzer import HDTest, HDTestConfig
from repro.fuzz.mutations import MutationStrategy, create_strategy
from repro.fuzz.results import AdversarialExample, CampaignResult
from repro.fuzz.targets import PredictionTarget
from repro.hdc.backends.dispatch import resolve_model_backend
from repro.hdc.model import HDCClassifier
from repro.obs.events import TelemetrySession
from repro.obs.recorder import CampaignTelemetry, Stopwatch
from repro.utils.rng import RngLike, ensure_rng, spawn
from repro.utils.validation import check_positive_int

__all__ = ["compare_strategies", "generate_adversarial_set"]

#: The four strategies Table II evaluates.
TABLE2_STRATEGIES = ("gauss", "rand", "row_col_rand", "shift")

ExecutorLike = Union[None, str, CampaignExecutor]

#: A telemetry sink for campaign runners: a bare recorder (caller owns
#: campaign boundaries) or a session (per-campaign events are emitted).
TelemetryLike = Union[None, CampaignTelemetry, TelemetrySession]


def _campaign_telemetry(
    telemetry: TelemetryLike, label: str, **meta
) -> tuple[Optional[CampaignTelemetry], Optional[TelemetrySession]]:
    """Resolve the per-campaign recorder (and owning session, if any).

    A :class:`~repro.obs.events.TelemetrySession` mints a fresh recorder
    per campaign (emitting the ``campaign_start`` header; callers emit
    ``campaign_end`` through the returned session); a bare
    :class:`~repro.obs.recorder.CampaignTelemetry` records everything
    into the caller's one stream without event boundaries.
    """
    if telemetry is None:
        return None, None
    if isinstance(telemetry, TelemetrySession):
        return telemetry.campaign(label, **meta), telemetry
    if isinstance(telemetry, CampaignTelemetry):
        return telemetry, None
    raise ConfigurationError(
        f"telemetry must be a CampaignTelemetry or TelemetrySession, "
        f"got {type(telemetry).__name__}"
    )


def _resolve_executor(executor: ExecutorLike) -> tuple[Optional[CampaignExecutor], bool]:
    """Resolve *executor*; the flag marks instances this call owns.

    An executor created here from a name is *owned* — the campaign
    function closes it (releasing e.g. a persistent process pool) when
    it finishes.  Caller-provided instances are left open so their
    pools survive for the caller's next campaign.
    """
    if executor is None or isinstance(executor, CampaignExecutor):
        return executor, False
    if isinstance(executor, str):
        return create_executor(executor), True
    raise ConfigurationError(
        f"executor must be a name or CampaignExecutor, got {type(executor).__name__}"
    )


def _resolve_backend(model: Any, backend: Optional[str]) -> Any:
    """Re-target a model *or prediction target* for a compute backend.

    A :class:`~repro.fuzz.targets.PredictionTarget` repackages every
    member (exact); a bare model goes through
    :func:`~repro.hdc.backends.dispatch.resolve_model_backend` as
    before.
    """
    if isinstance(model, PredictionTarget):
        return model.with_backend(backend)
    return resolve_model_backend(model, backend)


def compare_strategies(
    model: HDCClassifier,
    inputs: Sequence[Any],
    strategies: Iterable[Union[str, MutationStrategy]] = TABLE2_STRATEGIES,
    *,
    domain: Union[None, str, FuzzDomain] = None,
    config: Optional[HDTestConfig] = None,
    constraint: Optional[Constraint] = None,
    oracle: Optional[Any] = None,
    rng: RngLike = None,
    executor: ExecutorLike = None,
    backend: Optional[str] = None,
    telemetry: TelemetryLike = None,
) -> dict[str, CampaignResult]:
    """Fuzz the same inputs under each strategy (Table II's experiment).

    Each strategy gets an independent child generator derived from
    *rng* with :func:`repro.utils.rng.spawn`, assigned by the
    strategy's *name* (rank in sorted order) — so results are
    reproducible, decorrelated across strategies, and invariant to the
    order in which strategies are listed.

    Parameters
    ----------
    domain:
        Input modality of the campaign (``"image"``, ``"text"``,
        ``"record"``/``"voice"``, a
        :class:`~repro.fuzz.domains.FuzzDomain`, or ``None`` to derive
        it from the strategies).  All listed strategies must share one
        domain namespace.
    oracle:
        Discrepancy rule shared by every per-strategy campaign;
        ``None`` keeps the engines' default (self-differential for
        single models, cross-model for
        :class:`~repro.fuzz.targets.ModelEnsembleTarget` inputs).
    executor:
        How to schedule each per-strategy campaign: ``None`` (the
        historical serial loop), an executor name (``"serial"``,
        ``"batched"``, ``"process"``), or a pre-built
        :class:`~repro.fuzz.executor.CampaignExecutor`.
    backend:
        Compute backend for the model: ``None``/``"dense"`` keeps it
        as-is; ``"packed"``/``"torch"`` repackage a dense-binary model
        and ``"packed-bipolar"`` the paper's bipolar model onto
        bit-packed popcount kernels (exact — see
        :func:`repro.hdc.backends.dispatch.resolve_model_backend`).
    telemetry:
        Optional instrumentation sink.  A
        :class:`~repro.obs.events.TelemetrySession` gets one campaign
        (header + snapshots + final summary) per strategy; a bare
        :class:`~repro.obs.recorder.CampaignTelemetry` accumulates all
        strategies into the caller's recorder.  Telemetry never touches
        the RNG, so results are bit-identical with it on or off.
    """
    generator = ensure_rng(rng)
    model = _resolve_backend(model, backend)
    exec_obj, owns_executor = _resolve_executor(executor)
    strategy_objs = [
        strategy if isinstance(strategy, MutationStrategy) else create_strategy(strategy)
        for strategy in strategies
    ]
    names = [strategy.name for strategy in strategy_objs]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ConfigurationError(f"duplicate strategy {sorted(duplicates)[0]!r}")
    namespaces = {strategy.domain for strategy in strategy_objs}
    if len(namespaces) > 1:
        raise ConfigurationError(
            f"strategies span multiple domains {sorted(namespaces)}; "
            "compare one modality per campaign"
        )
    # One child generator per strategy, bound to the strategy *name* so
    # listing order cannot re-pair names with streams.
    children = spawn(generator, len(names))
    rank = {name: position for position, name in enumerate(sorted(names))}
    results: dict[str, CampaignResult] = {}
    try:
        for strategy in strategy_objs:
            strategy_rng = children[rank[strategy.name]]
            obs, session = _campaign_telemetry(
                telemetry,
                strategy.name,
                strategy=strategy.name,
                oracle=type(oracle).__name__ if oracle is not None else None,
                executor=getattr(exec_obj, "name", None),
                n_inputs=len(inputs),
            )
            if exec_obj is None:
                fuzzer = HDTest(
                    model, strategy, domain=domain, config=config,
                    constraint=constraint, oracle=oracle, rng=strategy_rng,
                    telemetry=obs,
                )
                results[strategy.name] = fuzzer.fuzz(inputs)
            else:
                results[strategy.name] = exec_obj.run(
                    model, strategy, inputs, domain=domain,
                    config=config, constraint=constraint, oracle=oracle,
                    rng=strategy_rng, telemetry=obs,
                )
            if session is not None:
                session.finish(obs, summary=results[strategy.name].summary())
    finally:
        if owns_executor and exec_obj is not None:
            exec_obj.close()
    return results


def generate_adversarial_set(
    model: HDCClassifier,
    inputs: Sequence[Any],
    n_target: int,
    *,
    strategy: Union[str, MutationStrategy] = "gauss",
    domain: Union[None, str, FuzzDomain] = None,
    true_labels: Optional[Sequence[int]] = None,
    config: Optional[HDTestConfig] = None,
    constraint: Optional[Constraint] = None,
    rng: RngLike = None,
    max_attempts_factor: int = 20,
    executor: ExecutorLike = None,
    backend: Optional[str] = None,
    telemetry: TelemetryLike = None,
) -> tuple[list[AdversarialExample], float]:
    """Fuzz until *n_target* adversarial examples are collected.

    Inputs are visited in order and recycled (with fresh mutation
    randomness) as many times as needed; a hard cap of
    ``max_attempts_factor * n_target`` attempts guards against a model
    too robust for the chosen strategy/budget.

    Parameters
    ----------
    domain:
        Input modality (see :func:`compare_strategies`); text and
        record pools generate through the very same wave machinery.
    true_labels:
        Optional ground-truth labels aligned with *inputs*; attached to
        each example so the defense can retrain "with correct labels".
    executor:
        ``None`` reproduces the historical input-at-a-time loop; an
        executor name or instance processes the cycled input pool in
        *adaptive* waves (preserving visit order): each wave is sized
        from the success rate observed so far (see :func:`_wave_size`),
        which is how the batched and process engines reach their
        throughput without over-provisioning easy campaigns.  A persistent executor
        (the process pool) is reused across waves — the model is
        broadcast once per campaign, not once per wave — and closed on
        return when it was created here from a name.
    backend:
        Compute backend for the model (see :func:`compare_strategies`).
    telemetry:
        Optional instrumentation sink (see :func:`compare_strategies`);
        one campaign spans the whole generation run, waves included.

    Returns
    -------
    (examples, elapsed_seconds):
        Exactly *n_target* examples and the wall-clock spent.
    """
    n_target = check_positive_int(n_target, "n_target")
    if len(inputs) == 0:
        raise ConfigurationError("inputs is empty")
    if true_labels is not None and len(true_labels) != len(inputs):
        raise ConfigurationError(
            f"{len(true_labels)} true_labels for {len(inputs)} inputs"
        )
    generator = ensure_rng(rng)
    model = _resolve_backend(model, backend)
    exec_obj, owns_executor = _resolve_executor(executor)
    max_attempts = max_attempts_factor * n_target
    strategy_name = (
        strategy if isinstance(strategy, str) else strategy.name
    )
    obs, session = _campaign_telemetry(
        telemetry,
        f"generate[{strategy_name}]",
        strategy=strategy_name,
        n_target=n_target,
        executor=getattr(exec_obj, "name", None),
    )

    def _finish(examples: list, elapsed: float, attempts: int) -> None:
        if session is not None:
            session.finish(
                obs,
                summary={
                    "n_examples": len(examples),
                    "attempts": attempts,
                    "elapsed_seconds": elapsed,
                },
            )

    if exec_obj is not None:
        try:
            examples, elapsed, attempts = _generate_with_executor(
                exec_obj, model, inputs, n_target,
                strategy=strategy, domain=domain, true_labels=true_labels,
                config=config, constraint=constraint, generator=generator,
                max_attempts=max_attempts, obs=obs,
            )
            _finish(examples, elapsed, attempts)
            return examples, elapsed
        finally:
            if owns_executor:
                exec_obj.close()

    fuzzer = HDTest(model, strategy, domain=domain, config=config,
                    constraint=constraint, rng=generator, telemetry=obs)
    examples: list[AdversarialExample] = []
    attempts = 0
    with Stopwatch() as sw:
        while len(examples) < n_target:
            index = attempts % len(inputs)
            outcome = fuzzer.fuzz_one(inputs[index])
            attempts += 1
            if outcome.success:
                examples.append(
                    _with_true_label(outcome.example, true_labels, index)
                )
            if len(examples) < n_target and attempts >= max_attempts:
                raise FuzzingError(
                    f"only {len(examples)}/{n_target} adversarials after "
                    f"{attempts} attempts — raise the budget or weaken the model"
                )
    _finish(examples, sw.elapsed, attempts)
    return examples, sw.elapsed


def _with_true_label(
    example: AdversarialExample,
    true_labels: Optional[Sequence[int]],
    index: int,
) -> AdversarialExample:
    if true_labels is None:
        return example
    return replace(example, true_label=int(true_labels[index]))


def _wave_size(
    remaining: int,
    attempts: int,
    successes: int,
    n_inputs: int,
    attempts_left: int,
) -> int:
    """Adaptive wave sizing: cover the deficit at the observed success rate.

    Before any signal exists (no completed attempts, or no success yet)
    the historical ``max(2×remaining, 16)`` heuristic applies.  After
    that, the wave is sized to ``remaining / rate`` with 25 % headroom:
    an easy model (rate ≈ 1) stops over-provisioning double waves, a
    robust one (rate ≪ ½) stops trickling through many under-sized
    waves.  The result is always clamped to the input pool and the
    remaining attempt budget.

    Per-input outcomes depend only on each input's own spawned
    generator, drawn from the root stream in visit order, so wave
    boundaries never change *which* adversarials are found — only how
    many scheduler round-trips finding them takes (property-tested in
    ``tests/fuzz/test_campaign.py``).
    """
    if attempts == 0 or successes == 0:
        want = max(2 * remaining, 16)
    else:
        rate = successes / attempts
        want = int(np.ceil(remaining / rate * 1.25))
    return max(1, min(n_inputs, attempts_left, max(want, 16)))


def _generate_with_executor(
    exec_obj: CampaignExecutor,
    model: HDCClassifier,
    inputs: Sequence[Any],
    n_target: int,
    *,
    strategy,
    domain,
    true_labels,
    config,
    constraint,
    generator: np.random.Generator,
    max_attempts: int,
    obs: Optional[CampaignTelemetry] = None,
) -> tuple[list[AdversarialExample], float, int]:
    """Wave-mode generation: fuzz the cycled pool in adaptive waves."""
    examples: list[AdversarialExample] = []
    attempts = 0
    successes = 0
    with Stopwatch() as sw:
        while len(examples) < n_target:
            remaining = n_target - len(examples)
            wave_size = _wave_size(
                remaining, attempts, successes, len(inputs),
                max_attempts - attempts,
            )
            indices = [(attempts + j) % len(inputs) for j in range(wave_size)]
            result = exec_obj.run(
                model, strategy, [inputs[i] for i in indices], domain=domain,
                config=config, constraint=constraint, rng=generator,
                telemetry=obs,
            )
            attempts += wave_size
            # Tally *every* success — surplus ones in the final wave are
            # already-paid-for adversarials, and skipping them would both
            # discard them and bias the observed rate `_wave_size` sizes
            # the next campaign's waves from.  Only the returned list is
            # truncated to the requested count.
            for position, outcome in enumerate(result.outcomes):
                if outcome.success:
                    successes += 1
                    examples.append(
                        _with_true_label(
                            outcome.example, true_labels, indices[position]
                        )
                    )
            if len(examples) < n_target and attempts >= max_attempts:
                raise FuzzingError(
                    f"only {len(examples)}/{n_target} adversarials after "
                    f"{attempts} attempts — raise the budget or weaken the model"
                )
    return examples[:n_target], sw.elapsed, attempts
