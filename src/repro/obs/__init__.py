"""Campaign observability: telemetry counters, events, progress, reports.

The instrumentation subsystem both fuzzing engines and all executors
thread through their hot loops (ISSUE 7):

- :class:`CampaignTelemetry` / :data:`NULL_TELEMETRY` — monotonic
  counters and phase wall-timings, with order-invariant merge semantics
  for process-pool reduction (:mod:`repro.obs.recorder`);
- :class:`TelemetrySession` — the JSONL event stream plus live
  progress sink behind ``hdtest fuzz --telemetry/--progress``
  (:mod:`repro.obs.events`);
- :func:`render_report` — the ``hdtest report`` renderer for telemetry
  JSONL streams and saved campaign JSON (:mod:`repro.obs.report`);
- :func:`profile_call` — the ``--profile`` cProfile hotspot wrapper
  (:mod:`repro.obs.profiling`).
"""

from repro.obs.events import TelemetrySession, read_events
from repro.obs.profiling import format_hotspots, profile_call
from repro.obs.progress import ProgressRenderer
from repro.obs.recorder import (
    IPC_PHASES,
    NULL_TELEMETRY,
    PHASES,
    CampaignTelemetry,
    NullTelemetry,
    Stopwatch,
)
from repro.obs.report import load_campaign_records, render_report

__all__ = [
    "CampaignTelemetry",
    "IPC_PHASES",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PHASES",
    "ProgressRenderer",
    "Stopwatch",
    "TelemetrySession",
    "format_hotspots",
    "load_campaign_records",
    "profile_call",
    "read_events",
    "render_report",
]
