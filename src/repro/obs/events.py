"""JSONL telemetry event stream: the session, writer, and reader.

A :class:`TelemetrySession` owns the sinks for one CLI run or test: an
optional JSONL file receiving structured event records and an optional
live single-line progress renderer.  Campaign recorders are minted via
:meth:`TelemetrySession.campaign`, which emits the campaign header;
their :meth:`~repro.obs.recorder.CampaignTelemetry.heartbeat` calls
land here and are rate-limited into periodic ``snapshot`` events;
:meth:`TelemetrySession.finish` emits the final summary.

Event records (one JSON object per line)::

    {"event": "campaign_start", "label": ..., "meta": {...}, "time": ...}
    {"event": "snapshot", "label": ..., "elapsed_seconds": ...,
     "counters": {...}, "phase_seconds": {...}, ...}
    {"event": "campaign_end", "label": ..., "telemetry": {...},
     "summary": {...}, "time": ...}
    {"event": "profile", "hotspots": [...], "time": ...}

``hdtest report`` re-renders a campaign report from exactly this
stream (see :mod:`repro.obs.report`); :func:`read_events` is the
matching reader.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import IO, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.progress import ProgressRenderer
from repro.obs.recorder import CampaignTelemetry

__all__ = ["TelemetrySession", "read_events"]

#: Default minimum seconds between emitted snapshot events.
DEFAULT_SNAPSHOT_INTERVAL = 0.5


def _sanitize(value):
    """*value* with every non-finite float replaced by ``None``, recursively.

    Telemetry payloads routinely carry NaN (``avg_l1`` with no
    successes) and occasionally Inf — nested arbitrarily deep in
    summary dicts, per-member breakdowns, or snapshot lists.
    ``json.dumps`` would emit the bare ``NaN``/``Infinity`` literals,
    which are not JSON; every record is scrubbed here so the stream
    keeps its strict-JSON contract for external consumers.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


class TelemetrySession:
    """Sink owner for telemetry: JSONL event file and/or live progress.

    Parameters
    ----------
    jsonl_path:
        Path for the JSONL event stream, or ``None`` for no file.  The
        file is created lazily on the first event and truncated (one
        session = one stream).
    progress:
        ``True`` renders a live single-line status to *stream*
        (default ``sys.stderr``) on each snapshot.
    snapshot_interval:
        Minimum seconds between snapshot emissions; heartbeats arriving
        faster are dropped, keeping per-iteration cost O(1).

    Examples
    --------
    >>> with TelemetrySession("events.jsonl") as session:  # doctest: +SKIP
    ...     telemetry = session.campaign("gauss", oracle="cross-model")
    ...     ...  # run the campaign with this recorder
    ...     session.finish(telemetry, summary=result.summary())
    """

    def __init__(
        self,
        jsonl_path: Optional[Union[str, Path]] = None,
        *,
        progress: bool = False,
        stream: Optional[IO[str]] = None,
        snapshot_interval: float = DEFAULT_SNAPSHOT_INTERVAL,
    ) -> None:
        if snapshot_interval < 0:
            raise ConfigurationError(
                f"snapshot_interval must be >= 0, got {snapshot_interval}"
            )
        self._path = Path(jsonl_path) if jsonl_path is not None else None
        self._file: Optional[IO[str]] = None
        self._open_mode = "w"
        self._renderer = ProgressRenderer(stream) if progress else None
        self.snapshot_interval = float(snapshot_interval)
        self._last_snapshot = float("-inf")
        self.events_emitted = 0

    # -- campaign lifecycle -------------------------------------------------
    def campaign(self, label: str, **meta) -> CampaignTelemetry:
        """Mint a recorder for one campaign and emit its header event."""
        self.emit(
            {
                "event": "campaign_start",
                "label": label,
                "meta": meta,
                "time": time.time(),
            }
        )
        self._last_snapshot = float("-inf")
        return CampaignTelemetry(self, label=label, meta=meta)

    def maybe_snapshot(self, telemetry: CampaignTelemetry) -> None:
        """Rate-limited snapshot: emit if the interval has elapsed."""
        now = time.perf_counter()
        if now - self._last_snapshot < self.snapshot_interval:
            return
        self._last_snapshot = now
        record = telemetry.snapshot()
        record.pop("meta", None)
        record["event"] = "snapshot"
        self.emit(record)
        if self._renderer is not None:
            self._renderer.render(record)

    def finish(
        self,
        telemetry: CampaignTelemetry,
        summary: Optional[dict] = None,
    ) -> None:
        """Emit the campaign's final ``campaign_end`` record."""
        if self._renderer is not None:
            self._renderer.finish()
        self.emit(
            {
                "event": "campaign_end",
                "label": telemetry.label,
                "telemetry": telemetry.snapshot(),
                "summary": summary,
                "time": time.time(),
            }
        )

    # -- plumbing ------------------------------------------------------------
    def emit(self, record: dict) -> None:
        """Append one event record to the JSONL stream (if any).

        Records are sanitised recursively (non-finite floats become
        ``null`` at any nesting depth) and serialised with
        ``allow_nan=False``, so a value the sanitiser cannot reach fails
        loudly here instead of corrupting the stream downstream.
        """
        self.events_emitted += 1
        if self._path is None:
            return
        if self._file is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            # The first open of a session truncates (one session = one
            # stream); any later lazy reopen — e.g. an emit after
            # close() — must append, not destroy the flushed events.
            self._file = self._path.open(self._open_mode, encoding="utf-8")
            self._open_mode = "a"
        self._file.write(
            json.dumps(_sanitize(record), separators=(",", ":"), allow_nan=False)
            + "\n"
        )
        self._file.flush()

    def close(self) -> None:
        """Flush and close the sinks (idempotent)."""
        if self._renderer is not None:
            self._renderer.finish()
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> list[dict]:
    """Read a telemetry JSONL stream back into a list of event dicts."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: not a JSONL telemetry record: {exc}"
                ) from exc
            if not isinstance(record, dict) or "event" not in record:
                raise ConfigurationError(
                    f"{path}:{lineno}: telemetry records must be objects "
                    "with an 'event' key"
                )
            events.append(record)
    return events
