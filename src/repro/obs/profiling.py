"""cProfile wrapper for ``hdtest fuzz --profile``.

Wraps a campaign callable in the deterministic ``cProfile`` profiler
and distils the result into the top-N cumulative-time hotspots as
JSON-ready records, so the hotspot list can ride along in the
telemetry stream (``{"event": "profile", ...}``) and the CLI can print
it.  Profiling is off by default: cProfile instruments every Python
call and typically adds tens of percent of wall-clock overhead, so it
must never be conflated with the always-cheap telemetry counters.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable, Tuple

__all__ = ["profile_call", "format_hotspots"]

#: Default number of hotspot rows reported.
DEFAULT_TOP_N = 15


def profile_call(
    fn: Callable[[], Any], *, top_n: int = DEFAULT_TOP_N
) -> Tuple[Any, list[dict]]:
    """Run *fn* under cProfile; return ``(result, hotspots)``.

    Hotspots are the *top_n* entries by cumulative time, each a dict
    with ``function`` (``file:line(name)``), ``calls``, ``tottime``
    and ``cumtime`` seconds.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    hotspots = []
    for func in stats.fcn_list[:top_n]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        hotspots.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "calls": int(nc),
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    return result, hotspots


def format_hotspots(hotspots: list[dict]) -> str:
    """Render the hotspot records as an aligned plain-text table."""
    lines = [f"{'cumtime':>10}  {'tottime':>10}  {'calls':>9}  function"]
    for spot in hotspots:
        lines.append(
            f"{spot['cumtime']:>10.4f}  {spot['tottime']:>10.4f}  "
            f"{spot['calls']:>9d}  {spot['function']}"
        )
    return "\n".join(lines)
