"""The telemetry recorder: counters, phase timings, and the null object.

A running campaign is a black box without instrumentation: nothing
reports how iteration time splits across encode / AM query / mutation /
fitness / oracle, how effective the dedupe caches are, or which
strategy or ensemble member is producing the discrepancies.
:class:`CampaignTelemetry` is the low-overhead recorder both fuzzing
engines thread through their hot loops to answer exactly those
questions; :data:`NULL_TELEMETRY` is the do-nothing stand-in installed
when telemetry is off, so the instrumented code paths cost a handful of
no-op attribute calls per *iteration* (not per child) and campaign
outcomes stay bit-identical either way (property-tested in
``tests/obs/test_invariance.py``, overhead pinned ≤ 5 % by
``benchmarks/bench_fuzzing_throughput.py``).

Counter vocabulary (all monotonic, order-invariant under merge):

``inputs``
    Original inputs entering the engine.
``iterations``
    Fuzzing iterations executed, summed over inputs (a lock-step
    iteration with *b* live inputs counts *b*).
``children``
    Mutants generated, before constraint filtering; also broken out
    per strategy in :attr:`CampaignTelemetry.by_strategy`.
``children_in_budget`` / ``encode_requests``
    Mutants surviving clip + budget filter — every one needs a
    hypervector, so this equals the encode-request count.
``encoded_children``
    Child rows actually encoded (scratch or delta); the difference
    ``encode_requests − encoded_children`` is the dedupe-cache saving
    (:class:`repro.utils.cache.LRUCache` hits plus intra-iteration
    duplicates), reported as the cache hit count.
``encodes``
    Hypervector blocks computed: ``encoded_children`` × the target's
    ``n_encode_blocks`` (K for independent ensembles, 1 for
    shared-codebook ones).
``seed_encodes``
    Original inputs scratch-encoded for their reference prediction.
``am_queries``
    Associative-memory query rows: children *and* references, times
    ``n_members``.
``retired``
    Inputs retired by a discrepancy (successes, including
    ``seed_discrepancies`` — the iteration-0 pre-mutation splits).
``exhausted``
    Inputs that ran out of iteration budget.
``broadcast_bytes``
    Approximate bytes shipped from the campaign parent to worker
    processes (multi-process executors only; see
    :func:`repro.utils.shm.payload_nbytes`).  Shared-memory transports
    count handle sizes, not array bytes — the counter measures what
    actually crosses the pipes.

Phase wall-timings accumulate under the five :data:`PHASES` keys via
``with telemetry.phase("encode"): ...``; the phase timers are cached
per name so the steady-state cost of a timed block is two
``perf_counter`` calls.  Multi-process executors additionally time the
:data:`IPC_PHASES` — ``broadcast`` (shipping inputs / encoded blocks to
workers) and ``gather`` (collecting their votes) — which
``hdtest report`` surfaces next to the engine phases.

Merging (:meth:`CampaignTelemetry.merge`) sums counters, phase
timings, and the per-strategy / per-member breakdowns, and concatenates
then sorts the retirement-iteration log — so reducing per-worker
telemetry from a process pool is associative, commutative, and
independent of shard order (spec-keyed workers can report in any
order).
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Optional

from repro.errors import ConfigurationError

__all__ = [
    "PHASES",
    "IPC_PHASES",
    "Stopwatch",
    "CampaignTelemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
]

#: The engine phases whose wall-clock split telemetry records.
PHASES = ("encode", "query", "mutate", "fitness", "oracle")

#: IPC phases the multi-process executors add on top of :data:`PHASES`.
#: Created lazily on first use (single-process snapshots stay five-key).
IPC_PHASES = ("broadcast", "gather")


class Stopwatch:
    """A context-manager stopwatch: ``with Stopwatch() as sw: ...``.

    The repo's single wall-clock primitive — campaign runners, the
    telemetry recorder, and the paper-metric helpers in
    :mod:`repro.metrics.timing` all time through it.
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self._elapsed = time.perf_counter() - self._start
        self._start = None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (live while running, frozen after exit)."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed


class _NullPhase:
    """The no-op phase context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class NullTelemetry:
    """Telemetry that records nothing — the disabled-path stand-in.

    Every recording method is an empty no-op and :meth:`phase` returns
    one shared do-nothing context manager, so instrumented hot loops
    pay only the attribute call when telemetry is off.  ``enabled`` is
    False; the marker/delta surface returns ``None`` so callers can
    attach ``telemetry.since(mark)`` to results unconditionally.
    """

    __slots__ = ()
    enabled = False

    def phase(self, name: str) -> _NullPhase:
        """A no-op context manager (the shared null phase)."""
        return _NULL_PHASE

    def count(self, name: str, n: int = 1) -> None:
        """Discard a counter increment."""

    def count_strategy(self, name: str, n: int) -> None:
        """Discard a per-strategy child count."""

    def record_success(self, iteration, disagreed_members=None) -> None:
        """Discard a retirement record."""

    def record_arm_block(self, arm: str, *, scheduled: int, retired: int) -> None:
        """Discard an adaptive-scheduler block record."""

    def heartbeat(self) -> None:
        """Discard a liveness tick."""

    def marker(self) -> None:
        """No state to mark."""
        return None

    def since(self, marker) -> None:
        """No delta to report."""
        return None


#: The shared disabled-telemetry instance engines default to.
NULL_TELEMETRY = NullTelemetry()


class _PhaseTimer:
    """Accumulating timer for one phase (cached per name, not reentrant)."""

    __slots__ = ("_phases", "_name", "_t0")

    def __init__(self, phases: dict, name: str) -> None:
        self._phases = phases
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._phases[self._name] += time.perf_counter() - self._t0
        return False


class CampaignTelemetry:
    """Monotonic counters + phase timings for one fuzzing campaign.

    Parameters
    ----------
    session:
        Optional :class:`~repro.obs.events.TelemetrySession` that
        receives periodic snapshot events (JSONL records, live progress)
        on :meth:`heartbeat`.  ``None`` records silently — counters and
        timings are still available through :meth:`snapshot`.
    label:
        Campaign label stamped on emitted events (usually the strategy
        name).
    meta:
        Static campaign metadata for the session's header event
        (oracle, executor, member count, …).

    Examples
    --------
    >>> telemetry = CampaignTelemetry()
    >>> with telemetry.phase("encode"):
    ...     pass
    >>> telemetry.count("encodes", 3)
    >>> telemetry.snapshot()["counters"]["encodes"]
    3
    """

    enabled = True

    def __init__(
        self,
        session: Optional[Any] = None,
        *,
        label: str = "",
        meta: Optional[dict] = None,
    ) -> None:
        self.label = label
        self.meta = dict(meta or {})
        self.counters: dict[str, int] = {}
        self.phase_seconds: dict[str, float] = {name: 0.0 for name in PHASES}
        self.by_strategy: dict[str, int] = {}
        self.by_member: dict[int, int] = {}
        #: Adaptive-scheduler accounting: per bandit arm, the number of
        #: scheduled blocks, inputs scheduled, and inputs retired.
        self.by_arm: dict[str, dict[str, int]] = {}
        #: Iteration at which each retirement happened (0 = seed
        #: discrepancy) — the HDXplore discrepancies-over-iterations log.
        self.retired_at: list[int] = []
        self.busy_seconds = 0.0  # merged worker wall-clock (parallel sum)
        self._session = session
        self._timers: dict[str, _PhaseTimer] = {}
        self._start = time.perf_counter()

    # -- recording (hot path) ----------------------------------------------
    def phase(self, name: str) -> _PhaseTimer:
        """Accumulating wall-clock context manager for phase *name*."""
        timer = self._timers.get(name)
        if timer is None:
            if name not in self.phase_seconds:
                self.phase_seconds[name] = 0.0
            timer = self._timers[name] = _PhaseTimer(self.phase_seconds, name)
        return timer

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def count_strategy(self, name: str, n: int) -> None:
        """Attribute *n* generated children to strategy *name*."""
        self.by_strategy[name] = self.by_strategy.get(name, 0) + n

    def record_success(
        self,
        iteration: int,
        disagreed_members: Optional[Iterable[int]] = None,
    ) -> None:
        """Record one retirement: the input produced a discrepancy.

        *iteration* 0 marks a seed discrepancy (members disagreed
        before any mutation); *disagreed_members* attributes ensemble
        disagreements to member indices.
        """
        self.count("retired")
        if iteration == 0:
            self.count("seed_discrepancies")
        self.retired_at.append(int(iteration))
        if disagreed_members is not None:
            for member in disagreed_members:
                member = int(member)
                self.by_member[member] = self.by_member.get(member, 0) + 1

    def record_arm_block(self, arm: str, *, scheduled: int, retired: int) -> None:
        """Record one adaptive-scheduler block: *scheduled* inputs were
        allocated to bandit arm *arm* and *retired* of them produced a
        discrepancy (see :mod:`repro.fuzz.adaptive`)."""
        stats = self.by_arm.setdefault(
            arm, {"blocks": 0, "scheduled": 0, "retired": 0}
        )
        stats["blocks"] += 1
        stats["scheduled"] += int(scheduled)
        stats["retired"] += int(retired)

    def heartbeat(self) -> None:
        """Liveness tick from the engine loop (rate-limited downstream).

        Cheap when no session is attached; with one, the session
        decides (by its snapshot interval) whether to emit a JSONL
        snapshot / progress-line update from :meth:`snapshot`.
        """
        if self._session is not None:
            self._session.maybe_snapshot(self)

    # -- reading -----------------------------------------------------------
    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since this recorder was created."""
        return time.perf_counter() - self._start

    @property
    def cache_hits(self) -> int:
        """Encode requests served without encoding (dedupe savings)."""
        return self.counters.get("encode_requests", 0) - self.counters.get(
            "encoded_children", 0
        )

    @property
    def cache_hit_rate(self) -> float:
        """``cache_hits / encode_requests`` (NaN before any request)."""
        requests = self.counters.get("encode_requests", 0)
        return self.cache_hits / requests if requests else float("nan")

    def snapshot(self) -> dict:
        """The full state as a JSON-ready dict (the merge/serialise form)."""
        return {
            "label": self.label,
            "meta": dict(self.meta),
            "elapsed_seconds": self.elapsed_seconds,
            "busy_seconds": self.busy_seconds,
            "counters": dict(self.counters),
            "cache_hits": self.cache_hits,
            "phase_seconds": dict(self.phase_seconds),
            "by_strategy": dict(self.by_strategy),
            "by_member": {str(k): v for k, v in self.by_member.items()},
            "by_arm": {arm: dict(stats) for arm, stats in self.by_arm.items()},
            "retired_at": list(self.retired_at),
        }

    # -- campaign deltas ----------------------------------------------------
    def marker(self) -> dict:
        """A point-in-time mark; pass to :meth:`since` for a delta dict.

        Lets one long-lived recorder serve several campaign runs (wave
        mode, strategy comparisons) while each run still attaches an
        accurate per-run telemetry record to its
        :class:`~repro.fuzz.results.CampaignResult`.
        """
        return self.snapshot()

    def since(self, marker: Optional[dict]) -> dict:
        """The delta snapshot accumulated after *marker* was taken."""
        now = self.snapshot()
        if marker is None:
            return now
        for key in ("counters", "phase_seconds", "by_strategy", "by_member"):
            base = marker.get(key, {})
            now[key] = {
                name: round(value - base.get(name, 0), 9)
                if isinstance(value, float)
                else value - base.get(name, 0)
                for name, value in now[key].items()
            }
            now[key] = {k: v for k, v in now[key].items() if v}
        # by_arm nests one stats dict per arm; delta each arm field-wise
        # and drop arms the window never touched.
        base_arms = marker.get("by_arm", {})
        now["by_arm"] = {
            arm: delta
            for arm, stats in now.get("by_arm", {}).items()
            for delta in [
                {
                    field: value - base_arms.get(arm, {}).get(field, 0)
                    for field, value in stats.items()
                    if value - base_arms.get(arm, {}).get(field, 0)
                }
            ]
            if delta
        }
        now["cache_hits"] = now["counters"].get(
            "encode_requests", 0
        ) - now["counters"].get("encoded_children", 0)
        now["elapsed_seconds"] -= marker.get("elapsed_seconds", 0.0)
        now["busy_seconds"] -= marker.get("busy_seconds", 0.0)
        n_before = len(marker.get("retired_at", []))
        now["retired_at"] = now["retired_at"][n_before:]
        return now

    # -- merging (process-pool reduction) ------------------------------------
    def merge(self, other: Any) -> "CampaignTelemetry":
        """Fold another recorder (or its snapshot dict) into this one.

        Sums counters, phase timings, and breakdowns; concatenates and
        sorts the retirement log (order-invariance: merging shard
        reports in any order yields identical state); accumulates the
        other recorder's wall-clock into :attr:`busy_seconds` (parallel
        workers overlap, so their elapsed must not sum into this
        recorder's own).
        """
        state = other.snapshot() if isinstance(other, CampaignTelemetry) else other
        if not isinstance(state, dict):
            raise ConfigurationError(
                f"cannot merge {type(other).__name__} into CampaignTelemetry"
            )
        for name, value in state.get("counters", {}).items():
            self.count(name, int(value))
        for name, value in state.get("phase_seconds", {}).items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + value
        for name, value in state.get("by_strategy", {}).items():
            self.count_strategy(name, int(value))
        for member, value in state.get("by_member", {}).items():
            member = int(member)
            self.by_member[member] = self.by_member.get(member, 0) + int(value)
        for arm, stats in state.get("by_arm", {}).items():
            mine = self.by_arm.setdefault(arm, {})
            for field, value in stats.items():
                mine[field] = mine.get(field, 0) + int(value)
        self.retired_at = sorted(self.retired_at + list(state.get("retired_at", [])))
        self.busy_seconds += state.get("busy_seconds", 0.0) + state.get(
            "elapsed_seconds", 0.0
        )
        return self

    def __repr__(self) -> str:
        return (
            f"CampaignTelemetry(label={self.label!r}, "
            f"counters={len(self.counters)}, "
            f"retired={self.counters.get('retired', 0)})"
        )
