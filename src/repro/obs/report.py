"""Render campaign reports from telemetry streams or saved campaigns.

``hdtest report <source>`` lands here.  *source* is either a telemetry
JSONL file written by a :class:`~repro.obs.events.TelemetrySession`
(``hdtest fuzz --telemetry out.jsonl``) or a campaigns JSON file from
:func:`repro.fuzz.serialization.save_campaigns_json` (any readable
schema version; telemetry tables appear when the record carries
telemetry, i.e. schema v3 results from instrumented runs).

The report reproduces the HDXplore-style views the ISSUE calls for:
phase time split, discrepancy yield per 1 000 encodes by
strategy/oracle, cache hit rate, cumulative discrepancies over
iterations, per-member disagreement attribution, and (from JSONL
snapshots) throughput over time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.obs.recorder import IPC_PHASES, PHASES

__all__ = ["load_campaign_records", "render_report"]

#: Phase-table columns: engine phases plus the executors' IPC phases.
#: Single-process campaigns show 0.000s in the IPC columns.
_REPORT_PHASES = tuple(PHASES) + tuple(IPC_PHASES)


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text table with right-aligned numeric-ish columns."""
    table = [list(headers)] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(table):
        cells = [
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        ]
        lines.append("  ".join(cells).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _num(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{digits}f}"
    return str(value)


def _load_jsonl(path: Path) -> list[dict]:
    """Normalise a telemetry event stream into campaign records."""
    from repro.obs.events import read_events

    records: dict[str, dict] = {}
    order: list[str] = []
    for event in read_events(path):
        kind = event.get("event")
        label = event.get("label", "")
        if kind == "campaign_start":
            order.append(label)
            records[label] = {
                "label": label,
                "meta": event.get("meta", {}),
                "summary": None,
                "telemetry": None,
                "snapshots": [],
            }
        elif kind in ("snapshot", "campaign_end", "profile"):
            record = records.get(label)
            if record is None and kind != "profile":
                record = records[label] = {
                    "label": label,
                    "meta": {},
                    "summary": None,
                    "telemetry": None,
                    "snapshots": [],
                }
                order.append(label)
            if kind == "snapshot":
                record["snapshots"].append(event)
            elif kind == "campaign_end":
                record["telemetry"] = event.get("telemetry")
                record["summary"] = event.get("summary")
    return [records[label] for label in order]


def _load_campaigns(path: Path) -> list[dict]:
    """Normalise a ``save_campaigns_json`` file into campaign records."""
    from repro.fuzz.serialization import load_campaigns_json

    records = []
    for name, record in load_campaigns_json(path).items():
        telemetry = record.get("telemetry")
        if telemetry is None:
            # Pre-v3 records carry no telemetry, but the outcome list
            # still supports the HDXplore iteration/member tables.
            retired_at = []
            by_member: dict[str, int] = {}
            for outcome in record.get("outcomes", []):
                example = outcome.get("example")
                if example is None:
                    continue
                retired_at.append(int(example["iterations"]))
                for member in example.get("disagreed_members") or ():
                    by_member[str(member)] = by_member.get(str(member), 0) + 1
            telemetry = {
                "counters": {"retired": len(retired_at)},
                "phase_seconds": {},
                "by_strategy": {},
                "by_member": by_member,
                "retired_at": sorted(retired_at),
                "elapsed_seconds": record.get("elapsed_seconds", 0.0),
            }
        records.append(
            {
                "label": name,
                "meta": {
                    "strategy": record.get("strategy"),
                    "guided": record.get("guided"),
                    "n_members": record.get("n_members"),
                },
                "summary": record.get("summary"),
                "telemetry": telemetry,
                "snapshots": [],
            }
        )
    return records


def load_campaign_records(source: Union[str, Path]) -> list[dict]:
    """Load *source* (telemetry JSONL or campaigns JSON) as records.

    Each record is ``{"label", "meta", "summary", "telemetry",
    "snapshots"}``; detection is by content — a JSON object is a
    campaigns file, anything else is parsed as JSONL events.
    """
    path = Path(source)
    if not path.exists():
        raise ConfigurationError(f"no telemetry or campaign file at {path}")
    text = path.read_text(encoding="utf-8")
    stripped = text.lstrip()
    if not stripped:
        raise ConfigurationError(f"{path} is empty")
    if stripped.startswith("{") and "\n{" not in text.strip():
        try:
            return _load_campaigns(path)
        except (ConfigurationError, AttributeError):
            pass  # fall through: single-line JSONL streams also start with '{'
    return _load_jsonl(path)


# -- report sections ---------------------------------------------------------


def _overview_rows(records: list[dict]) -> list[list[str]]:
    rows = []
    for record in records:
        telemetry = record.get("telemetry") or {}
        counters = telemetry.get("counters", {})
        meta = record.get("meta", {})
        summary = record.get("summary") or {}
        elapsed = telemetry.get("elapsed_seconds") or 0.0
        encodes = counters.get("encodes", 0)
        # Encode health at a glance: the encode phase is the campaign
        # hot path, so its throughput and wall-clock share are overview
        # columns (derived from existing counters — no schema change).
        encode_seconds = telemetry.get("phase_seconds", {}).get("encode", 0.0)
        rows.append(
            [
                record["label"],
                str(meta.get("oracle") or summary.get("executor") or "-"),
                _num(meta.get("n_members") or summary.get("n_members") or 1),
                _num(counters.get("inputs") or summary.get("n_inputs") or 0),
                _num(counters.get("retired", summary.get("n_success", 0))),
                _num(counters.get("seed_discrepancies", 0)),
                _num(telemetry.get("elapsed_seconds"), 2),
                _num(encodes / elapsed if encodes and elapsed > 0 else None, 0),
                f"{100.0 * encode_seconds / elapsed:.0f}%" if elapsed > 0 else "-",
            ]
        )
    return rows


def _phase_rows(records: list[dict]) -> list[list[str]]:
    rows = []
    for record in records:
        telemetry = record.get("telemetry") or {}
        phases = telemetry.get("phase_seconds", {})
        counters = telemetry.get("counters", {})
        elapsed = telemetry.get("elapsed_seconds") or 0.0
        timed = sum(phases.get(name, 0.0) for name in _REPORT_PHASES)
        row = [record["label"]]
        for name in _REPORT_PHASES:
            seconds = phases.get(name, 0.0)
            share = 100.0 * seconds / elapsed if elapsed > 0 else 0.0
            row.append(f"{seconds:.3f}s ({share:.0f}%)")
        row.append(f"{max(elapsed - timed, 0.0):.3f}s")
        nbytes = counters.get("broadcast_bytes", 0)
        row.append(f"{nbytes / 1e6:.2f}" if nbytes else "-")
        rows.append(row)
    return rows


def _yield_rows(records: list[dict]) -> list[list[str]]:
    rows = []
    for record in records:
        telemetry = record.get("telemetry") or {}
        counters = telemetry.get("counters", {})
        encodes = counters.get("encodes", 0)
        requests = counters.get("encode_requests", 0)
        retired = counters.get("retired", 0)
        elapsed = telemetry.get("elapsed_seconds") or 0.0
        hits = telemetry.get(
            "cache_hits", requests - counters.get("encoded_children", 0)
        )
        rows.append(
            [
                record["label"],
                _num(encodes),
                _num(counters.get("am_queries", 0)),
                _num(1000.0 * retired / encodes if encodes else None, 2),
                f"{100.0 * hits / requests:.1f}%" if requests else "-",
                _num(encodes / elapsed if elapsed > 0 else None, 0),
            ]
        )
    return rows


def _iterations_table(records: list[dict]) -> Optional[str]:
    """Cumulative discrepancies over iterations (HDXplore Fig. style)."""
    logs = {
        record["label"]: (record.get("telemetry") or {}).get("retired_at", [])
        for record in records
    }
    if not any(logs.values()):
        return None
    max_iter = max(max(log) for log in logs.values() if log)
    rows = []
    for iteration in range(int(max_iter) + 1):
        row = [str(iteration)]
        for label in logs:
            row.append(str(sum(1 for it in logs[label] if it <= iteration)))
        rows.append(row)
    return _format_table(["iteration"] + [f"{label}" for label in logs], rows)


def _member_table(records: list[dict]) -> Optional[str]:
    """Per-member disagreement attribution across campaigns."""
    by_label = {
        record["label"]: (record.get("telemetry") or {}).get("by_member", {})
        for record in records
    }
    members = sorted(
        {int(member) for counts in by_label.values() for member in counts}
    )
    if not members:
        return None
    rows = []
    for member in members:
        row = [str(member)]
        for label in by_label:
            row.append(str(by_label[label].get(str(member), 0)))
        rows.append(row)
    return _format_table(["member"] + list(by_label), rows)


def _arm_table(records: list[dict]) -> Optional[str]:
    """Adaptive-scheduler allocation and yield per bandit arm.

    Present only for campaigns driven by
    :func:`repro.fuzz.adaptive.run_adaptive_campaign` (their telemetry
    carries ``by_arm``); fixed campaigns render no section.
    """
    rows = []
    for record in records:
        by_arm = (record.get("telemetry") or {}).get("by_arm", {})
        total_scheduled = sum(s.get("scheduled", 0) for s in by_arm.values())
        for arm in sorted(by_arm):
            stats = by_arm[arm]
            scheduled = stats.get("scheduled", 0)
            retired = stats.get("retired", 0)
            share = 100.0 * scheduled / total_scheduled if total_scheduled else 0.0
            rows.append(
                [
                    record["label"],
                    arm,
                    _num(stats.get("blocks", 0)),
                    _num(scheduled),
                    f"{share:.0f}%",
                    _num(retired),
                    _num(retired / scheduled if scheduled else None, 3),
                ]
            )
    if not rows:
        return None
    return _format_table(
        ["campaign", "arm", "blocks", "scheduled", "share", "retired", "yield"],
        rows,
    )


def _throughput_table(records: list[dict]) -> Optional[str]:
    """Encode throughput between successive snapshots (JSONL only)."""
    rows = []
    for record in records:
        previous = {"elapsed_seconds": 0.0, "counters": {}}
        for snapshot in record.get("snapshots", []):
            elapsed = snapshot.get("elapsed_seconds", 0.0)
            encodes = snapshot.get("counters", {}).get("encodes", 0)
            dt = elapsed - previous["elapsed_seconds"]
            de = encodes - previous["counters"].get("encodes", 0)
            rows.append(
                [
                    record["label"],
                    _num(elapsed, 2),
                    _num(encodes),
                    _num(de / dt if dt > 0 else None, 0),
                ]
            )
            previous = snapshot
    if not rows:
        return None
    return _format_table(["campaign", "t (s)", "encodes", "enc/s"], rows)


def render_report(source: Union[str, Path]) -> str:
    """The full plain-text campaign report for *source*."""
    records = load_campaign_records(source)
    if not records:
        raise ConfigurationError(f"{source} contains no campaign records")
    sections = [f"# hdtest campaign report — {source}", ""]
    sections += [
        "## Campaigns",
        _format_table(
            [
                "campaign",
                "oracle/executor",
                "members",
                "inputs",
                "discrepancies",
                "seed-disc",
                "elapsed (s)",
                "enc/s",
                "encode%",
            ],
            _overview_rows(records),
        ),
        "",
        "## Phase time split",
        _format_table(
            ["campaign"] + list(_REPORT_PHASES) + ["other", "ipc-MB"],
            _phase_rows(records),
        ),
        "",
        "## Yield",
        _format_table(
            [
                "campaign",
                "encodes",
                "am-queries",
                "disc/1k-enc",
                "cache-hit",
                "enc/s",
            ],
            _yield_rows(records),
        ),
    ]
    iterations = _iterations_table(records)
    if iterations is not None:
        sections += ["", "## Cumulative discrepancies over iterations", iterations]
    arms = _arm_table(records)
    if arms is not None:
        sections += ["", "## Adaptive allocation by arm", arms]
    members = _member_table(records)
    if members is not None:
        sections += ["", "## Per-member disagreements", members]
    throughput = _throughput_table(records)
    if throughput is not None:
        sections += ["", "## Throughput over time", throughput]
    return "\n".join(sections) + "\n"
