"""Live single-line campaign progress for TTY runs (``--progress``).

Renders snapshot records from the telemetry stream as one
carriage-return-overwritten status line on stderr, e.g.::

    [gauss] it 412 | live 9/16 | disc 7 | enc 38.2k (hit 41%) | 18.4k enc/s

The renderer is a dumb sink: it never touches the engines or RNG, so
enabling it cannot perturb campaign outcomes.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

__all__ = ["ProgressRenderer"]

#: Maximum rendered line width (avoids wrapping on narrow terminals).
LINE_WIDTH = 110


def _compact(value: float) -> str:
    """Format a count compactly: 950 -> '950', 38200 -> '38.2k'."""
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


class ProgressRenderer:
    """Single-line ``\\r`` status renderer fed by snapshot records."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._last_width = 0

    def render(self, snapshot: dict) -> None:
        """Overwrite the status line with the state in *snapshot*."""
        counters = snapshot.get("counters", {})
        elapsed = snapshot.get("elapsed_seconds", 0.0) or 0.0
        inputs = counters.get("inputs", 0)
        done = counters.get("retired", 0) + counters.get("exhausted", 0)
        encodes = counters.get("encodes", 0)
        requests = counters.get("encode_requests", 0)
        hits = snapshot.get("cache_hits", 0)
        parts = [
            f"[{snapshot.get('label') or 'campaign'}]",
            f"it {_compact(counters.get('iterations', 0))}",
            f"live {inputs - done}/{inputs}",
            f"disc {counters.get('retired', 0)}",
            f"enc {_compact(encodes)}"
            + (f" (hit {100.0 * hits / requests:.0f}%)" if requests else ""),
        ]
        if elapsed > 0:
            parts.append(f"{_compact(encodes / elapsed)} enc/s")
        line = " | ".join(parts)[:LINE_WIDTH]
        pad = " " * max(0, self._last_width - len(line))
        self._stream.write("\r" + line + pad)
        self._stream.flush()
        self._last_width = len(line)

    def finish(self) -> None:
        """Terminate the status line (newline) if anything was rendered."""
        if self._last_width:
            self._stream.write("\n")
            self._stream.flush()
            self._last_width = 0
