"""Distance, aggregation, and timing metrics for fuzzing evaluation."""

from repro.metrics.distances import (
    GREY_SCALE,
    l0_pixels,
    normalized_l1,
    normalized_l2,
    normalized_linf,
    perturbation_metrics,
)
from repro.metrics.stats import SummaryStats, group_means, summarize
from repro.metrics.timing import Stopwatch, per_minute, per_thousand

__all__ = [
    "GREY_SCALE",
    "Stopwatch",
    "SummaryStats",
    "group_means",
    "l0_pixels",
    "normalized_l1",
    "normalized_l2",
    "normalized_linf",
    "per_minute",
    "per_thousand",
    "perturbation_metrics",
    "summarize",
]
