"""Wall-clock helpers for the paper's throughput metrics.

Sec. V-A reports "execution time to successfully generate 1000
adversarial images"; the abstract quotes "around 400 adversarial inputs
within one minute".  :class:`Stopwatch` measures elapsed time and
:func:`per_thousand` / :func:`per_minute` extrapolate a measured run to
those two reporting conventions.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["Stopwatch", "per_thousand", "per_minute"]


class Stopwatch:
    """A context-manager stopwatch: ``with Stopwatch() as sw: ...``."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self._elapsed = time.perf_counter() - self._start
        self._start = None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (live while running, frozen after exit)."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed


def per_thousand(elapsed_seconds: float, n_generated: int) -> float:
    """Extrapolated seconds to generate 1000 items at the measured rate."""
    if n_generated <= 0:
        raise ConfigurationError(f"n_generated must be positive, got {n_generated}")
    if elapsed_seconds < 0:
        raise ConfigurationError(f"elapsed_seconds must be >= 0, got {elapsed_seconds}")
    return elapsed_seconds / n_generated * 1000.0


def per_minute(elapsed_seconds: float, n_generated: int) -> float:
    """Extrapolated items generated per minute at the measured rate."""
    if n_generated < 0:
        raise ConfigurationError(f"n_generated must be >= 0, got {n_generated}")
    if elapsed_seconds <= 0:
        raise ConfigurationError(f"elapsed_seconds must be > 0, got {elapsed_seconds}")
    return n_generated / elapsed_seconds * 60.0
