"""Wall-clock helpers for the paper's throughput metrics.

Sec. V-A reports "execution time to successfully generate 1000
adversarial images"; the abstract quotes "around 400 adversarial inputs
within one minute".  :func:`per_thousand` / :func:`per_minute`
extrapolate a measured run to those two reporting conventions.

The repo's single stopwatch primitive lives with the rest of the
instrumentation in :mod:`repro.obs.recorder`; :class:`Stopwatch` is
re-exported here so existing ``repro.metrics.timing`` imports keep
working — new code should import it from :mod:`repro.obs`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.obs.recorder import Stopwatch

__all__ = ["Stopwatch", "per_thousand", "per_minute"]


def per_thousand(elapsed_seconds: float, n_generated: int) -> float:
    """Extrapolated seconds to generate 1000 items at the measured rate."""
    if n_generated <= 0:
        raise ConfigurationError(f"n_generated must be positive, got {n_generated}")
    if elapsed_seconds < 0:
        raise ConfigurationError(f"elapsed_seconds must be >= 0, got {elapsed_seconds}")
    return elapsed_seconds / n_generated * 1000.0


def per_minute(elapsed_seconds: float, n_generated: int) -> float:
    """Extrapolated items generated per minute at the measured rate."""
    if n_generated < 0:
        raise ConfigurationError(f"n_generated must be >= 0, got {n_generated}")
    if elapsed_seconds <= 0:
        raise ConfigurationError(f"elapsed_seconds must be > 0, got {elapsed_seconds}")
    return n_generated / elapsed_seconds * 60.0
