"""Aggregation helpers used by campaign results and per-class analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SummaryStats", "summarize", "group_means"]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample (mean/std/min/max/count)."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.count})"


def summarize(values: Iterable[float]) -> SummaryStats:
    """Summary statistics for a possibly-empty sample (NaNs if empty)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return SummaryStats(float("nan"), float("nan"), float("nan"), float("nan"), 0)
    return SummaryStats(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


def group_means(
    values: Sequence[float], groups: Sequence[int], *, n_groups: Optional[int] = None
) -> np.ndarray:
    """Mean of *values* within each integer group (NaN for empty groups).

    Used for the per-class analysis of Fig. 7: values are L1/L2/iteration
    counts, groups are digit classes.
    """
    vals = np.asarray(values, dtype=np.float64)
    grp = np.asarray(groups, dtype=np.int64)
    if vals.shape != grp.shape:
        raise ConfigurationError(
            f"values and groups must align, got shapes {vals.shape} vs {grp.shape}"
        )
    if n_groups is None:
        n_groups = int(grp.max()) + 1 if grp.size else 0
    out = np.full(n_groups, np.nan)
    for g in range(n_groups):
        mask = grp == g
        if mask.any():
            out[g] = vals[mask].mean()
    return out
