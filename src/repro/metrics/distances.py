"""Perturbation distance metrics (Sec. V-A).

The paper evaluates adversarial images by *normalized* L1 and L2
distance between the mutated and original image.  Normalisation here
means grey values are scaled to [0, 1] (divide by 255) before taking
the vector norm over all pixels — the convention that makes the paper's
numbers self-consistent (DESIGN.md §5): the example perturbation budget
"L2 < 1", rand's L2 ≈ 0.09, and gauss's L1 ≈ 2.91 all fit this scale.

L0 (pixels touched) and L∞ (largest single-pixel change) are included
because Figs. 4–6 visualise "mutated pixels", which is the L0 support.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError

__all__ = [
    "normalized_l1",
    "normalized_l2",
    "normalized_linf",
    "l0_pixels",
    "perturbation_metrics",
    "GREY_SCALE",
]

#: Full grey-scale range used for normalisation.
GREY_SCALE = 255.0


def _delta(original: np.ndarray, mutated: np.ndarray) -> np.ndarray:
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(mutated, dtype=np.float64)
    if a.shape != b.shape:
        raise DimensionMismatchError(
            f"original and mutated shapes differ: {a.shape} vs {b.shape}"
        )
    return (b - a) / GREY_SCALE


def normalized_l1(original: np.ndarray, mutated: np.ndarray) -> float:
    """Sum of absolute per-pixel changes, grey values scaled to [0, 1]."""
    return float(np.abs(_delta(original, mutated)).sum())


def normalized_l2(original: np.ndarray, mutated: np.ndarray) -> float:
    """Euclidean norm of the per-pixel change, grey values in [0, 1]."""
    return float(np.linalg.norm(_delta(original, mutated).ravel()))


def normalized_linf(original: np.ndarray, mutated: np.ndarray) -> float:
    """Largest absolute single-pixel change, grey values in [0, 1]."""
    return float(np.abs(_delta(original, mutated)).max())


def l0_pixels(original: np.ndarray, mutated: np.ndarray, *, tol: float = 0.5) -> int:
    """Number of pixels changed by more than *tol* grey levels."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(mutated, dtype=np.float64)
    if a.shape != b.shape:
        raise DimensionMismatchError(
            f"original and mutated shapes differ: {a.shape} vs {b.shape}"
        )
    return int((np.abs(b - a) > tol).sum())


def perturbation_metrics(original: np.ndarray, mutated: np.ndarray) -> dict[str, float]:
    """All four perturbation metrics as one dict (keys l1/l2/linf/l0)."""
    return {
        "l1": normalized_l1(original, mutated),
        "l2": normalized_l2(original, mutated),
        "linf": normalized_linf(original, mutated),
        "l0": float(l0_pixels(original, mutated)),
    }
