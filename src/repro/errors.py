"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class.  Subclasses
exist per subsystem so tests (and users) can assert on precise failure
modes instead of string-matching messages.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DimensionMismatchError",
    "EncodingError",
    "NotTrainedError",
    "DatasetError",
    "MutationError",
    "ConstraintError",
    "FuzzingError",
]


class ReproError(Exception):
    """Base class for every deliberate error raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter was supplied to a constructor or function."""


class DimensionMismatchError(ReproError, ValueError):
    """Two hypervectors (or HV batches) have incompatible dimensions."""


class EncodingError(ReproError, ValueError):
    """An input cannot be encoded (wrong shape, dtype, or value range)."""


class NotTrainedError(ReproError, RuntimeError):
    """A model was queried before :meth:`fit` (or training) completed."""


class DatasetError(ReproError, ValueError):
    """A dataset is malformed, empty, or inconsistent with its labels."""


class MutationError(ReproError, ValueError):
    """A mutation strategy received invalid parameters or inputs."""


class ConstraintError(ReproError, ValueError):
    """A perturbation constraint was configured inconsistently."""


class FuzzingError(ReproError, RuntimeError):
    """The fuzzing loop reached an unrecoverable state."""
