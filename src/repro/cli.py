"""``hdtest`` command-line interface.

Subcommands mirror the paper's workflow, generalised over fuzzing
domains (Sec. V-E):

* ``hdtest train`` — train an HDC model for any ``--domain``: the
  Sec. III pixel model on (synthetic or real) MNIST digits, the
  Rahimi-style n-gram language model on the synthetic language corpus,
  or the VoiceHD-style record model on the synthetic voice features —
  and save it to a ``.npz`` file.
* ``hdtest fuzz`` — run Alg. 1 over domain-appropriate test inputs
  with one or more strategies and print the Table II-style summary;
  ``--domain image|text|voice`` drives the same engines and executors.
* ``hdtest defend`` — run the Sec. V-D retraining defense end to end
  (image domain).
* ``hdtest strategies`` — list registered mutation strategies.

Every subcommand takes ``--seed`` and is fully reproducible.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.analysis.figures import adversarial_triptych
from repro.analysis.per_class import per_class_series, per_class_table
from repro.analysis.tables import table2
from repro.datasets.loaders import load_digits
from repro.datasets.text import make_language_dataset
from repro.datasets.voice import make_voice_dataset
from repro.defense.retrain import run_defense
from repro.errors import ConfigurationError
from repro.fuzz.campaign import compare_strategies, generate_adversarial_set
from repro.fuzz.domains import create_domain, get_domain_class
from repro.fuzz.executor import create_executor, executor_names
from repro.fuzz.fuzzer import HDTestConfig
from repro.fuzz.mutations import strategy_names
from repro.hdc.backends.dispatch import MODEL_BACKEND_CHOICES
from repro.hdc.binary_model import BinaryHDCClassifier, BinaryPixelEncoder
from repro.hdc.encoders.image import PixelEncoder
from repro.hdc.encoders.ngram import NgramEncoder
from repro.hdc.encoders.record import RecordEncoder
from repro.hdc.item_memory import CODEBOOK_KINDS
from repro.hdc.model import HDCClassifier

#: CLI domain choices; ``voice`` is the record domain's spoken-feature face.
DOMAIN_CHOICES = ("image", "text", "voice")

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="hdtest",
        description="Differential fuzz testing of HDC models (DAC'21 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"hdtest {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train an HDC classifier for any domain")
    train.add_argument("--out", type=Path, required=True, help="output model .npz path")
    train.add_argument("--domain", choices=DOMAIN_CHOICES, default="image",
                       help="input modality: MNIST-style digits (image), the "
                            "synthetic language corpus with the n-gram encoder "
                            "(text), or the synthetic VoiceHD features with the "
                            "record encoder (voice); default: image")
    train.add_argument("--family", choices=("bipolar", "binary"), default="bipolar",
                       help="model family: the paper's bipolar pixel model, or the "
                            "dense-binary (Rahimi-style) family that the packed/"
                            "torch backends accelerate (image domain only; "
                            "default: bipolar)")
    train.add_argument("--codebook", choices=CODEBOOK_KINDS, default="materialized",
                       help="item-memory representation: 'materialized' stores "
                            "the random codebooks as arrays in RAM and in the "
                            ".npz; 'rematerialized' regenerates rows on demand "
                            "from a counter-based PRF seed — bit-identical "
                            "model, near-zero codebook memory, and the saved "
                            "file stores only the 64-bit seed "
                            "(default: materialized)")
    train.add_argument("--n-train", type=int, default=2000)
    train.add_argument("--n-test", type=int, default=400)
    train.add_argument("--dimension", type=int, default=10000)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--data-dir", type=Path, default=None,
                       help="directory with real MNIST IDX files (optional)")

    fuzz = sub.add_parser("fuzz", help="fuzz a trained model (Table II workflow)")
    fuzz.add_argument("--model", type=Path, required=True, help="model .npz from `train`")
    fuzz.add_argument("--domain", choices=DOMAIN_CHOICES, default="image",
                      help="input modality fuzzed; must match the trained model "
                           "(default: image)")
    fuzz.add_argument("--strategies", nargs="+", default=None,
                      help="one or more strategies from the domain's namespace "
                           f"(image: {', '.join(strategy_names('image'))}; "
                           f"text: {', '.join(strategy_names('text'))}; "
                           f"voice: {', '.join(strategy_names('record'))}); "
                           "default: the domain's default strategy")
    fuzz.add_argument("--n-images", type=int, default=50,
                      help="number of inputs fuzzed (any domain)")
    fuzz.add_argument("--iter-times", type=int, default=50)
    fuzz.add_argument("--top-n", type=int, default=3)
    fuzz.add_argument("--children", type=int, default=8)
    fuzz.add_argument("--unguided", action="store_true",
                      help="disable distance-guided seed survival")
    fuzz.add_argument("--ensemble", type=int, default=1, metavar="K",
                      help="cross-model differential testing (HDXplore): fuzz "
                           "an ensemble of K models — the loaded model plus "
                           "K-1 architecture-matched members with freshly "
                           "spawned item memories, trained on regenerated "
                           "in-distribution data — hunting inputs the members "
                           "disagree on instead of self-flips (default: 1, "
                           "the paper's single-model oracle)")
    fuzz.add_argument("--ensemble-train", type=int, default=500, metavar="N",
                      help="training-pool size for the spawned ensemble "
                           "members (default: 500)")
    fuzz.add_argument("--shared-codebook", action="store_true",
                      help="with --ensemble K: members share the loaded "
                           "model's encoder (one item memory) and diverge "
                           "through bagged training resamples — the campaign "
                           "encodes each child once and queries K associative "
                           "memories, instead of K independent encodes")
    fuzz.add_argument("--codebook", choices=CODEBOOK_KINDS, default=None,
                      help="assert the loaded model uses this codebook "
                           "representation (a materialized model cannot be "
                           "converted to a seed, so this flag verifies the "
                           "intended hot path actually runs rather than "
                           "converting; default: accept either)")
    fuzz.add_argument("--oracle", choices=("cross-model", "majority"),
                      default="cross-model",
                      help="ensemble discrepancy rule: any pairwise member "
                           "disagreement (cross-model) or a flip of the "
                           "ensemble's majority vote (majority); ignored "
                           "without --ensemble (default: cross-model)")
    fuzz.add_argument("--adaptive", action="store_true",
                      help="adaptive campaign (repro.fuzz.adaptive): a "
                           "Thompson-sampling bandit splits each wave's "
                           "iteration blocks across --strategies, and retired "
                           "adversarials re-enter the evolving seed corpus "
                           "(deduped + L1-minimised); fuzzes until "
                           "--n-adversarial discrepancies instead of one "
                           "pass over the pool")
    fuzz.add_argument("--n-adversarial", type=int, default=20,
                      help="with --adaptive: discrepancies to collect "
                           "(default: 20)")
    fuzz.add_argument("--schedule", choices=("thompson", "uniform"),
                      default="thompson",
                      help="with --adaptive: block allocation rule — "
                           "Thompson sampling on observed retirement rates, "
                           "or a uniform round-robin baseline "
                           "(default: thompson)")
    fuzz.add_argument("--block-size", type=int, default=16,
                      help="with --adaptive: inputs per scheduled block, the "
                           "bandit's decision granularity (default: 16)")
    fuzz.add_argument("--static-corpus", action="store_true",
                      help="with --adaptive: keep the seed pool static "
                           "(disable adversarial re-entry)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="with --adaptive: re-enter adversarials without "
                           "greedy L1-minimisation")
    _add_executor_flags(fuzz)
    fuzz.add_argument("--seed", type=int, default=0,
                      help="root seed; for --domain text/voice use the same "
                           "seed as `train` so fuzzing inputs stay in the "
                           "model's distribution (default: 0)")
    fuzz.add_argument("--per-class", action="store_true", help="print Fig. 7 table")
    fuzz.add_argument("--show-example", action="store_true",
                      help="render one adversarial triptych as ASCII")
    fuzz.add_argument("--telemetry", type=Path, default=None, metavar="PATH",
                      help="write a structured JSONL telemetry stream "
                           "(campaign headers, periodic snapshots, final "
                           "summaries) to PATH; render it afterwards with "
                           "`hdtest report PATH`")
    fuzz.add_argument("--progress", action="store_true",
                      help="live single-line campaign progress on stderr "
                           "(inputs, discrepancies, encodes, cache hits, "
                           "throughput)")
    fuzz.add_argument("--profile", action="store_true",
                      help="run the campaign under cProfile and print the "
                           "top hotspots by cumulative time (recorded in "
                           "the --telemetry stream as a 'profile' event)")
    fuzz.add_argument("--data-dir", type=Path, default=None)

    defend = sub.add_parser("defend", help="retraining defense (Sec. V-D)")
    defend.add_argument("--model", type=Path, required=True)
    defend.add_argument("--n-adversarial", type=int, default=200)
    defend.add_argument("--strategy", default="gauss")
    _add_executor_flags(defend)
    defend.add_argument("--seed", type=int, default=0)
    defend.add_argument("--data-dir", type=Path, default=None)

    report = sub.add_parser(
        "report",
        help="render a campaign report from telemetry JSONL / saved "
             "campaigns JSON, or run the full evaluation suite (--model)",
    )
    report.add_argument("source", type=Path, nargs="?", default=None,
                        help="telemetry .jsonl (from `hdtest fuzz "
                             "--telemetry`) or campaigns .json (from "
                             "save_campaigns_json) to render as a campaign "
                             "report; omit and pass --model to run the "
                             "evaluation suite instead")
    report.add_argument("--model", type=Path, default=None,
                        help="model .npz: run the scaled-down experiment "
                             "suite and render its markdown report "
                             "(mutually exclusive with a telemetry source)")
    report.add_argument("--out", type=Path, default=None,
                        help="write markdown here (default: stdout)")
    report.add_argument("--n-fuzz", type=int, default=20)
    report.add_argument("--n-adversarial", type=int, default=60)
    report.add_argument("--n-images", type=int, default=200,
                        help="size of the labeled test pool")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--data-dir", type=Path, default=None)

    sub.add_parser("strategies", help="list registered mutation strategies")
    return parser


def _add_executor_flags(command: argparse.ArgumentParser) -> None:
    """Campaign-scheduling flags shared by fuzz/defend."""
    command.add_argument(
        "--executor", choices=executor_names(), default="serial",
        help="campaign schedule: paper-literal serial loop, lock-step "
             "batched engine, a process pool sharded by input, or one "
             "worker per ensemble member (member-sharded; K >= 2 "
             "ensembles only) — all bit-identical (default: serial)",
    )
    command.add_argument(
        "--batch-size", type=int, default=None,
        help="inputs fuzzed in lock-step per chunk "
             "(batched/process executors; default 64)",
    )
    command.add_argument(
        "--workers", type=int, default=None,
        help="process count for --executor process (default: all cores)",
    )
    command.add_argument(
        "--backend", choices=MODEL_BACKEND_CHOICES, default="dense",
        help="model compute backend: 'dense' runs the model as loaded; "
             "'packed' repackages a --family binary model onto bit-packed "
             "uint64 popcount kernels (bit-identical, 8x less HV memory); "
             "'packed-bipolar' does the same for the paper's default "
             "bipolar family (sign-bit words, popcount cosine); 'torch' "
             "uses torch kernels when installed, numpy otherwise "
             "(default: dense)",
    )


def _executor_from_args(args: argparse.Namespace):
    """None for the historical serial path, else a configured executor.

    Explicitly-set sizing flags that the chosen executor cannot honour
    (e.g. ``--workers`` with ``--executor batched``) are rejected by
    :func:`~repro.fuzz.executor.create_executor` rather than silently
    ignored — including for the serial executor.
    """
    if args.executor == "serial" and args.batch_size is None and args.workers is None:
        return None
    return create_executor(
        args.executor, batch_size=args.batch_size, n_workers=args.workers
    )


def _split_fraction(n_train: int, n_test: int) -> float:
    """Train share of a generated corpus, kept away from degenerate splits."""
    total = max(n_train + n_test, 1)
    return min(max(n_train / total, 0.1), 0.9)


def _cmd_train(args: argparse.Namespace) -> int:
    if args.domain != "image" and args.family != "bipolar":
        raise ConfigurationError(
            f"--family {args.family} applies to the image domain only"
        )
    if args.domain == "text":
        per_class = max(2, (args.n_train + args.n_test) // 4)
        corpus = make_language_dataset(n_per_class=per_class, seed=args.seed)
        train_texts, test_texts = corpus.split(
            _split_fraction(args.n_train, args.n_test), rng=args.seed
        )
        encoder = NgramEncoder(
            n=3, dimension=args.dimension, rng=args.seed, codebook=args.codebook
        )
        model = HDCClassifier(encoder, n_classes=corpus.n_classes)
        model.fit(list(train_texts.texts), train_texts.labels)
        accuracy = model.score(list(test_texts.texts), test_texts.labels)
        trained_on = f"{len(train_texts)} synthetic-language texts"
    elif args.domain == "voice":
        per_class = max(2, (args.n_train + args.n_test) // 6)
        corpus = make_voice_dataset(n_per_class=per_class, seed=args.seed)
        train_recs, test_recs = corpus.split(
            _split_fraction(args.n_train, args.n_test), rng=args.seed
        )
        encoder = RecordEncoder(
            n_features=corpus.n_features, dimension=args.dimension, rng=args.seed,
            codebook=args.codebook,
        )
        model = HDCClassifier(encoder, n_classes=corpus.n_classes)
        model.fit(train_recs.records, train_recs.labels)
        accuracy = model.score(test_recs.records, test_recs.labels)
        trained_on = f"{len(train_recs)} synthetic voice records"
    else:
        train_set, test_set = load_digits(
            n_train=args.n_train, n_test=args.n_test, seed=args.seed,
            data_dir=args.data_dir,
        )
        if args.family == "binary":
            encoder = BinaryPixelEncoder(
                dimension=args.dimension, rng=args.seed, codebook=args.codebook
            )
            model = BinaryHDCClassifier(encoder, n_classes=10)
        else:
            model = HDCClassifier(
                PixelEncoder(
                    dimension=args.dimension, rng=args.seed, codebook=args.codebook
                ),
                n_classes=10,
            )
        model.fit(train_set.images, train_set.labels)
        accuracy = model.score(test_set.images, test_set.labels)
        trained_on = f"{len(train_set)} {train_set.name} images ({args.family} family)"
    model.save(args.out)
    print(f"trained {args.domain} domain on {trained_on} "
          f"(D={args.dimension}); test accuracy {accuracy:.3f}")
    print(f"model saved to {args.out}")
    return 0


def _load_model(path: Path):
    """Load any model family, dispatching on the file's ``kind`` tag."""
    with np.load(path, allow_pickle=False) as data:
        kind = str(data["kind"]) if "kind" in data else "?"
    if kind == "pixel-binary-hdc":
        return BinaryHDCClassifier.load(path)
    if kind in ("pixel-hdc", "ngram-hdc", "record-hdc"):
        return HDCClassifier.load(path)
    raise ConfigurationError(f"unsupported model kind {kind!r} in {path}")


def _load_model_and_images(args: argparse.Namespace, n_images: int):
    model = _load_model(args.model)
    _, test_set = load_digits(
        n_train=1, n_test=max(n_images, 1), seed=args.seed + 1, data_dir=args.data_dir
    )
    return model, test_set


def _fuzz_inputs(args: argparse.Namespace, n: int) -> list:
    """A pool of *n* domain-appropriate unlabeled fuzzing inputs.

    Differential testing needs no labels (the model's own prediction is
    the reference), but inputs must come from the distribution the
    model was trained on for the robustness summary to mean anything.
    The synthetic text/voice generators derive their class structure
    (Markov languages, spectral prototypes) from ``--seed``, so fuzzing
    inputs reuse that seed for the classes and ``--seed + 1`` only for
    fresh samples — run fuzz with the same ``--seed`` as train to stay
    in distribution.  The image domain's digit distribution is
    seed-independent (and keeps its ``--data-dir`` escape hatch to real
    MNIST).
    """
    if args.domain == "text":
        corpus = make_language_dataset(
            n_per_class=max(1, -(-n // 4)), seed=args.seed,
            sample_seed=args.seed + 1,
        )
        return list(corpus.texts)[:n]
    if args.domain == "voice":
        corpus = make_voice_dataset(
            n_per_class=max(1, -(-n // 6)), seed=args.seed,
            sample_seed=args.seed + 1,
        )
        return list(corpus.records[:n])
    _, test_set = load_digits(
        n_train=1, n_test=max(n, 1), seed=args.seed + 1, data_dir=args.data_dir
    )
    return list(test_set.images[:n].astype(np.float64))


def _ensemble_train_pool(args: argparse.Namespace):
    """Labelled in-distribution training data for spawned ensemble members.

    Mirrors ``hdtest train``'s per-domain generators (same ``--seed``,
    so the class structure matches the loaded model's); sized by
    ``--ensemble-train``.
    """
    n = max(args.ensemble_train, 10)
    if args.domain == "text":
        corpus = make_language_dataset(n_per_class=max(2, n // 4), seed=args.seed)
        return list(corpus.texts), corpus.labels
    if args.domain == "voice":
        corpus = make_voice_dataset(n_per_class=max(2, n // 6), seed=args.seed)
        return corpus.records, corpus.labels
    train_set, _ = load_digits(
        n_train=n, n_test=1, seed=args.seed, data_dir=args.data_dir
    )
    return train_set.images, train_set.labels


def _resolve_fuzz_target(args: argparse.Namespace, model):
    """The system under test: the model, or a K-member ensemble around it.

    ``--ensemble K`` spawns K − 1 architecture-matched members with
    fresh item memories (member seeds derived from ``--seed``), trains
    them on regenerated in-distribution data, and returns the
    cross-model target plus the matching oracle.  With
    ``--shared-codebook`` the K − 1 members instead reuse the loaded
    model's encoder object and diverge through bagged resamples of the
    same pool, so the campaign encodes each child once for all K
    members.
    """
    from repro.fuzz.oracle import CrossModelOracle, MajorityOracle
    from repro.fuzz.targets import ModelEnsembleTarget, SharedCodebookEnsembleTarget

    if args.ensemble < 1:
        raise ConfigurationError(f"--ensemble must be >= 1, got {args.ensemble}")
    if args.ensemble == 1:
        if args.shared_codebook:
            raise ConfigurationError(
                "--shared-codebook needs --ensemble K with K >= 2"
            )
        return model, None
    inputs, labels = _ensemble_train_pool(args)
    if args.shared_codebook:
        target: Any = SharedCodebookEnsembleTarget.trained_shared(
            model, args.ensemble, inputs, labels, rng=args.seed + 1
        )
    else:
        target = ModelEnsembleTarget.trained_like(
            model, args.ensemble, inputs, labels, rng=args.seed + 1
        )
    oracle = (
        MajorityOracle(model.n_classes)
        if args.oracle == "majority"
        else CrossModelOracle()
    )
    return target, oracle


def _resolve_strategies(args: argparse.Namespace) -> list[str]:
    """``--strategies`` validated against the domain's namespace."""
    domain_cls = get_domain_class(args.domain)
    available = strategy_names(domain_cls.name)
    # An adaptive campaign's point is choosing between arms, so its
    # default is the whole domain namespace, not the single default.
    if args.strategies:
        strategies = args.strategies
    elif getattr(args, "adaptive", False):
        strategies = list(available)
    else:
        strategies = [domain_cls.default_strategy]
    # Accept both `--strategies gauss rand` and `--strategies gauss,rand`.
    strategies = [
        token for item in strategies for token in item.split(",") if token
    ]
    unknown = [s for s in strategies if s not in available]
    if unknown:
        raise ConfigurationError(
            f"strategies {unknown} are not in the {args.domain!r} domain's "
            f"namespace; available: {', '.join(available)}"
        )
    return strategies


def _cmd_fuzz(args: argparse.Namespace) -> int:
    executor = _executor_from_args(args)  # reject bad flag combos before loading
    strategies = _resolve_strategies(args)
    model = _load_model(args.model)
    if args.codebook is not None:
        actual = model.encoder.codebook
        if actual != args.codebook:
            raise ConfigurationError(
                f"--codebook {args.codebook} requested but {args.model} holds "
                f"a {actual} model; retrain with "
                f"`hdtest train --codebook {args.codebook}`"
            )
    target, oracle = _resolve_fuzz_target(args, model)
    inputs = _fuzz_inputs(args, args.n_images)
    config = HDTestConfig(
        iter_times=args.iter_times,
        top_n=args.top_n,
        children_per_seed=args.children,
        guided=not args.unguided,
    )
    session = None
    if args.telemetry is not None or args.progress or args.profile:
        from repro.obs.events import TelemetrySession

        session = TelemetrySession(args.telemetry, progress=args.progress)

    if args.adaptive:
        return _adaptive_fuzz(
            args, model, target, oracle, inputs, config, session,
            executor, strategies,
        )

    def _run_campaigns():
        return compare_strategies(
            target,
            inputs,
            strategies,
            domain=create_domain(args.domain, model=model),
            config=config,
            oracle=oracle,
            rng=args.seed,
            executor=executor,
            backend=args.backend,
            telemetry=session,
        )

    try:
        if args.profile:
            import time as _time

            from repro.obs.profiling import format_hotspots, profile_call

            results, hotspots = profile_call(_run_campaigns)
            session.emit(
                {"event": "profile", "hotspots": hotspots, "time": _time.time()}
            )
            print(format_hotspots(hotspots))
            print()
        else:
            results = _run_campaigns()
    finally:
        if session is not None:
            session.close()
    if args.ensemble > 1:
        seed_splits = sum(
            len(r.seed_discrepancies) for r in results.values()
        )
        flavor = "shared-codebook" if args.shared_codebook else "independent"
        print(f"cross-model differential: {args.ensemble} {flavor} members, "
              f"{args.oracle} oracle, {seed_splits} seed discrepancies")
    print(table2(results))
    if args.per_class:
        series = per_class_series(results, n_classes=model.n_classes)
        print()
        print(per_class_table(series))
    if args.show_example:
        if args.domain == "image":
            for result in results.values():
                if result.examples:
                    print()
                    print(adversarial_triptych(result.examples[0]))
                    break
        else:
            for result in results.values():
                if result.examples:
                    ex = result.examples[0]
                    print()
                    print(f"original:    {ex.original}")
                    print(f"adversarial: {ex.adversarial}")
                    print(f"label {ex.reference_label} -> {ex.adversarial_label} "
                          f"({ex.metrics})")
                    break
    if args.telemetry is not None:
        print(f"telemetry stream written to {args.telemetry} "
              f"({session.events_emitted} events) — render with "
              f"`hdtest report {args.telemetry}`")
    return 0


def _adaptive_fuzz(args, model, target, oracle, inputs, config, session,
                   executor, strategies) -> int:
    """``hdtest fuzz --adaptive``: corpus + bandit campaign and summary."""
    from repro.fuzz.adaptive import run_adaptive_campaign

    def _run():
        return run_adaptive_campaign(
            target, inputs, args.n_adversarial,
            strategies=strategies,
            schedule=args.schedule,
            evolve_corpus=not args.static_corpus,
            minimize=not args.no_minimize,
            block_size=args.block_size,
            domain=create_domain(args.domain, model=model),
            config=config,
            oracle=oracle,
            rng=args.seed,
            # _executor_from_args returns None for the historical serial
            # path; the adaptive driver has no such legacy mode, so pass
            # the requested name through rather than its "batched" default.
            executor=executor if executor is not None else args.executor,
            backend=args.backend,
            telemetry=session,
        )

    try:
        if args.profile:
            import time as _time

            from repro.obs.profiling import format_hotspots, profile_call

            result, hotspots = profile_call(_run)
            session.emit(
                {"event": "profile", "hotspots": hotspots, "time": _time.time()}
            )
            print(format_hotspots(hotspots))
            print()
        else:
            result = _run()
    finally:
        if session is not None:
            session.close()
    print(f"adaptive campaign: schedule={result.schedule} "
          f"executor={result.executor} arms={','.join(result.arms)}")
    print(f"  discrepancies   {result.n_examples}/{args.n_adversarial} "
          f"({result.n_found} found incl. surplus)")
    print(f"  attempts        {result.attempts} over {len(result.allocation)} waves")
    print(f"  encodes         {result.encodes}")
    dpe = result.discrepancies_per_encode
    print(f"  disc/encode     {dpe:.5f}" if dpe == dpe else
          "  disc/encode     -")
    print(f"  best arm        {result.best_arm()}")
    by_arm = (result.telemetry or {}).get("by_arm", {})
    if by_arm:
        print(f"  {'arm':16s} {'blocks':>7s} {'scheduled':>10s} "
              f"{'retired':>8s} {'yield':>7s}")
        for arm in sorted(by_arm):
            stats = by_arm[arm]
            scheduled = stats.get("scheduled", 0)
            retired = stats.get("retired", 0)
            rate = retired / scheduled if scheduled else float("nan")
            print(f"  {arm:16s} {stats.get('blocks', 0):7d} {scheduled:10d} "
                  f"{retired:8d} {rate:7.3f}")
    corpus = result.corpus
    print(f"corpus: {corpus['size']} seeds "
          f"({corpus['seeds']} original, {corpus['adversarial']} adversarial, "
          f"{corpus['near_miss']} near-miss; "
          f"{corpus['duplicates_rejected']} duplicates rejected)")
    if args.telemetry is not None:
        print(f"telemetry stream written to {args.telemetry} "
              f"({session.events_emitted} events) — render with "
              f"`hdtest report {args.telemetry}`")
    return 0


def _cmd_defend(args: argparse.Namespace) -> int:
    from repro.hdc.backends.dispatch import resolve_model_backend

    executor = _executor_from_args(args)  # reject bad flag combos before loading
    model, test_set = _load_model_and_images(args, 200)
    # Resolve once so generation *and* defense run on the same backend.
    model = resolve_model_backend(model, args.backend)
    examples, elapsed = generate_adversarial_set(
        model,
        test_set.images.astype(np.float64),
        args.n_adversarial,
        strategy=args.strategy,
        true_labels=test_set.labels,
        rng=args.seed,
        executor=executor,
    )
    report, _ = run_defense(
        model,
        examples,
        clean_inputs=test_set.images,
        clean_labels=test_set.labels,
        rng=args.seed,
    )
    print(f"generated {len(examples)} adversarial images in {elapsed:.1f}s "
          f"({args.strategy})")
    for key, value in report.summary().items():
        print(f"  {key:24s} {value:.3f}" if isinstance(value, float) else
              f"  {key:24s} {value}")
    verdict = "PASS" if report.rate_drop > 0.2 else "below paper's >20% drop"
    print(f"attack-rate drop {report.rate_drop * 100:.1f}% — {verdict}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if (args.source is None) == (args.model is None):
        raise ConfigurationError(
            "report needs exactly one of: a telemetry/campaigns source "
            "path (positional), or --model for the evaluation suite"
        )
    if args.source is not None:
        from repro.obs.report import render_report as render_campaign_report

        markdown = render_campaign_report(args.source)
        if args.out is None:
            print(markdown)
        else:
            args.out.write_text(markdown)
            print(f"report written to {args.out}")
        return 0

    from repro.analysis.experiments import render_report, run_experiment_suite

    model, test_set = _load_model_and_images(args, args.n_images)
    suite = run_experiment_suite(
        model,
        test_set.images,
        test_set.labels,
        n_fuzz=args.n_fuzz,
        n_adversarial=args.n_adversarial,
        rng=args.seed,
    )
    markdown = render_report(suite)
    if args.out is None:
        print(markdown)
    else:
        args.out.write_text(markdown)
        print(f"report written to {args.out}")
    return 0


def _cmd_strategies(_: argparse.Namespace) -> int:
    for domain in ("image", "text", "record"):
        print(f"{domain}: {', '.join(strategy_names(domain))}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "fuzz": _cmd_fuzz,
        "defend": _cmd_defend,
        "report": _cmd_report,
        "strategies": _cmd_strategies,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
