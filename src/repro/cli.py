"""``hdtest`` command-line interface.

Subcommands mirror the paper's workflow:

* ``hdtest train`` — train the Sec. III HDC model on (synthetic or
  real) MNIST digits and save it to a ``.npz`` file.
* ``hdtest fuzz`` — run Alg. 1 over test images with one or more
  Table I strategies and print the Table II-style summary.
* ``hdtest defend`` — run the Sec. V-D retraining defense end to end.
* ``hdtest strategies`` — list registered mutation strategies.

Every subcommand takes ``--seed`` and is fully reproducible.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.analysis.figures import adversarial_triptych
from repro.analysis.per_class import per_class_series, per_class_table
from repro.analysis.tables import table2
from repro.datasets.loaders import load_digits
from repro.defense.retrain import run_defense
from repro.errors import ConfigurationError
from repro.fuzz.campaign import compare_strategies, generate_adversarial_set
from repro.fuzz.executor import create_executor, executor_names
from repro.fuzz.fuzzer import HDTestConfig
from repro.fuzz.mutations import strategy_names
from repro.hdc.backends.dispatch import MODEL_BACKEND_CHOICES
from repro.hdc.binary_model import BinaryHDCClassifier, BinaryPixelEncoder
from repro.hdc.encoders.image import PixelEncoder
from repro.hdc.model import HDCClassifier

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="hdtest",
        description="Differential fuzz testing of HDC models (DAC'21 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"hdtest {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train an HDC digit classifier")
    train.add_argument("--out", type=Path, required=True, help="output model .npz path")
    train.add_argument("--family", choices=("bipolar", "binary"), default="bipolar",
                       help="model family: the paper's bipolar pixel model, or the "
                            "dense-binary (Rahimi-style) family that the packed/"
                            "torch backends accelerate (default: bipolar)")
    train.add_argument("--n-train", type=int, default=2000)
    train.add_argument("--n-test", type=int, default=400)
    train.add_argument("--dimension", type=int, default=10000)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--data-dir", type=Path, default=None,
                       help="directory with real MNIST IDX files (optional)")

    fuzz = sub.add_parser("fuzz", help="fuzz a trained model (Table II workflow)")
    fuzz.add_argument("--model", type=Path, required=True, help="model .npz from `train`")
    fuzz.add_argument("--strategies", nargs="+", default=["gauss"],
                      help=f"one or more of: {', '.join(strategy_names('image'))}")
    fuzz.add_argument("--n-images", type=int, default=50)
    fuzz.add_argument("--iter-times", type=int, default=50)
    fuzz.add_argument("--top-n", type=int, default=3)
    fuzz.add_argument("--children", type=int, default=8)
    fuzz.add_argument("--unguided", action="store_true",
                      help="disable distance-guided seed survival")
    _add_executor_flags(fuzz)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--per-class", action="store_true", help="print Fig. 7 table")
    fuzz.add_argument("--show-example", action="store_true",
                      help="render one adversarial triptych as ASCII")
    fuzz.add_argument("--data-dir", type=Path, default=None)

    defend = sub.add_parser("defend", help="retraining defense (Sec. V-D)")
    defend.add_argument("--model", type=Path, required=True)
    defend.add_argument("--n-adversarial", type=int, default=200)
    defend.add_argument("--strategy", default="gauss")
    _add_executor_flags(defend)
    defend.add_argument("--seed", type=int, default=0)
    defend.add_argument("--data-dir", type=Path, default=None)

    report = sub.add_parser(
        "report", help="run the full scaled-down evaluation suite → markdown"
    )
    report.add_argument("--model", type=Path, required=True)
    report.add_argument("--out", type=Path, default=None,
                        help="write markdown here (default: stdout)")
    report.add_argument("--n-fuzz", type=int, default=20)
    report.add_argument("--n-adversarial", type=int, default=60)
    report.add_argument("--n-images", type=int, default=200,
                        help="size of the labeled test pool")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--data-dir", type=Path, default=None)

    sub.add_parser("strategies", help="list registered mutation strategies")
    return parser


def _add_executor_flags(command: argparse.ArgumentParser) -> None:
    """Campaign-scheduling flags shared by fuzz/defend."""
    command.add_argument(
        "--executor", choices=executor_names(), default="serial",
        help="campaign schedule: paper-literal serial loop, lock-step "
             "batched engine, or a process pool (default: serial)",
    )
    command.add_argument(
        "--batch-size", type=int, default=None,
        help="inputs fuzzed in lock-step per chunk "
             "(batched/process executors; default 64)",
    )
    command.add_argument(
        "--workers", type=int, default=None,
        help="process count for --executor process (default: all cores)",
    )
    command.add_argument(
        "--backend", choices=MODEL_BACKEND_CHOICES, default="dense",
        help="model compute backend: 'dense' runs the model as loaded; "
             "'packed' repackages a --family binary model onto bit-packed "
             "uint64 popcount kernels (bit-identical, 8x less HV memory); "
             "'torch' uses torch kernels when installed, numpy otherwise "
             "(default: dense)",
    )


def _executor_from_args(args: argparse.Namespace):
    """None for the historical serial path, else a configured executor.

    Explicitly-set sizing flags that the chosen executor cannot honour
    (e.g. ``--workers`` with ``--executor batched``) are rejected by
    :func:`~repro.fuzz.executor.create_executor` rather than silently
    ignored — including for the serial executor.
    """
    if args.executor == "serial" and args.batch_size is None and args.workers is None:
        return None
    return create_executor(
        args.executor, batch_size=args.batch_size, n_workers=args.workers
    )


def _cmd_train(args: argparse.Namespace) -> int:
    train_set, test_set = load_digits(
        n_train=args.n_train, n_test=args.n_test, seed=args.seed, data_dir=args.data_dir
    )
    if args.family == "binary":
        encoder = BinaryPixelEncoder(dimension=args.dimension, rng=args.seed)
        model = BinaryHDCClassifier(encoder, n_classes=10)
    else:
        model = HDCClassifier(
            PixelEncoder(dimension=args.dimension, rng=args.seed), n_classes=10
        )
    model.fit(train_set.images, train_set.labels)
    accuracy = model.score(test_set.images, test_set.labels)
    model.save(args.out)
    print(f"trained {args.family} family on {len(train_set)} {train_set.name} "
          f"images (D={args.dimension}); test accuracy {accuracy:.3f}")
    print(f"model saved to {args.out}")
    return 0


def _load_model(path: Path):
    """Load either model family, dispatching on the file's ``kind`` tag."""
    with np.load(path, allow_pickle=False) as data:
        kind = str(data["kind"]) if "kind" in data else "?"
    if kind == "pixel-binary-hdc":
        return BinaryHDCClassifier.load(path)
    if kind == "pixel-hdc":
        return HDCClassifier.load(path)
    raise ConfigurationError(f"unsupported model kind {kind!r} in {path}")


def _load_model_and_images(args: argparse.Namespace, n_images: int):
    model = _load_model(args.model)
    _, test_set = load_digits(
        n_train=1, n_test=max(n_images, 1), seed=args.seed + 1, data_dir=args.data_dir
    )
    return model, test_set


def _cmd_fuzz(args: argparse.Namespace) -> int:
    executor = _executor_from_args(args)  # reject bad flag combos before loading
    model, test_set = _load_model_and_images(args, args.n_images)
    config = HDTestConfig(
        iter_times=args.iter_times,
        top_n=args.top_n,
        children_per_seed=args.children,
        guided=not args.unguided,
    )
    results = compare_strategies(
        model,
        test_set.images[: args.n_images].astype(np.float64),
        args.strategies,
        config=config,
        rng=args.seed,
        executor=executor,
        backend=args.backend,
    )
    print(table2(results))
    if args.per_class:
        series = per_class_series(results, n_classes=model.n_classes)
        print()
        print(per_class_table(series))
    if args.show_example:
        for result in results.values():
            if result.examples:
                print()
                print(adversarial_triptych(result.examples[0]))
                break
    return 0


def _cmd_defend(args: argparse.Namespace) -> int:
    from repro.hdc.backends.dispatch import resolve_model_backend

    executor = _executor_from_args(args)  # reject bad flag combos before loading
    model, test_set = _load_model_and_images(args, 200)
    # Resolve once so generation *and* defense run on the same backend.
    model = resolve_model_backend(model, args.backend)
    examples, elapsed = generate_adversarial_set(
        model,
        test_set.images.astype(np.float64),
        args.n_adversarial,
        strategy=args.strategy,
        true_labels=test_set.labels,
        rng=args.seed,
        executor=executor,
    )
    report, _ = run_defense(
        model,
        examples,
        clean_inputs=test_set.images,
        clean_labels=test_set.labels,
        rng=args.seed,
    )
    print(f"generated {len(examples)} adversarial images in {elapsed:.1f}s "
          f"({args.strategy})")
    for key, value in report.summary().items():
        print(f"  {key:24s} {value:.3f}" if isinstance(value, float) else
              f"  {key:24s} {value}")
    verdict = "PASS" if report.rate_drop > 0.2 else "below paper's >20% drop"
    print(f"attack-rate drop {report.rate_drop * 100:.1f}% — {verdict}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import render_report, run_experiment_suite

    model, test_set = _load_model_and_images(args, args.n_images)
    suite = run_experiment_suite(
        model,
        test_set.images,
        test_set.labels,
        n_fuzz=args.n_fuzz,
        n_adversarial=args.n_adversarial,
        rng=args.seed,
    )
    markdown = render_report(suite)
    if args.out is None:
        print(markdown)
    else:
        args.out.write_text(markdown)
        print(f"report written to {args.out}")
    return 0


def _cmd_strategies(_: argparse.Namespace) -> int:
    for domain in ("image", "text", "record"):
        print(f"{domain}: {', '.join(strategy_names(domain))}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "fuzz": _cmd_fuzz,
        "defend": _cmd_defend,
        "report": _cmd_report,
        "strategies": _cmd_strategies,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
