"""HDTest reproduction: differential fuzz testing of HDC models.

A from-scratch implementation of *HDTest: Differential Fuzz Testing of
Brain-Inspired Hyperdimensional Computing* (Ma, Guo, Jiang, Jiao —
DAC 2021), comprising:

* :mod:`repro.hdc` — the hyperdimensional-computing substrate (spaces,
  operations, item memories, encoders, associative memory, classifier);
* :mod:`repro.datasets` — MNIST-shaped synthetic digits, real-MNIST IDX
  I/O, and a synthetic language corpus;
* :mod:`repro.fuzz` — the HDTest guided differential fuzzer (mutation
  strategies, distance-guided fitness, constraints, oracle, campaigns);
* :mod:`repro.defense` — the adversarial-retraining defense;
* :mod:`repro.obs` — campaign observability (structured counters,
  phase timings, JSONL event streams, live progress, reports);
* :mod:`repro.metrics` / :mod:`repro.analysis` — evaluation metrics and
  table/figure reproduction.

Quickstart
----------
>>> from repro import HDCClassifier, HDTest, PixelEncoder, load_digits
>>> train, test = load_digits(n_train=300, n_test=30, seed=0)
>>> model = HDCClassifier(PixelEncoder(dimension=2048, rng=0), 10)
>>> _ = model.fit(train.images, train.labels)
>>> campaign = HDTest(model, "gauss", rng=0).fuzz(test.images[:3])
>>> campaign.n_inputs
3
"""

from repro._version import __version__
from repro.baselines import random_attack
from repro.datasets import (
    Dataset,
    SyntheticDigitGenerator,
    load_digits,
    make_language_dataset,
    make_voice_dataset,
)
from repro.defense import (
    DefenseReport,
    EnsembleDebugReport,
    attack_success_rate,
    debug_ensemble,
    ensemble_agreement,
    run_defense,
)
from repro.errors import (
    ConfigurationError,
    ConstraintError,
    DatasetError,
    DimensionMismatchError,
    EncodingError,
    FuzzingError,
    MutationError,
    NotTrainedError,
    ReproError,
)
from repro.fuzz import (
    AdversarialExample,
    BatchedExecutor,
    BatchedHDTest,
    CampaignResult,
    CrossModelOracle,
    HDTest,
    HDTestConfig,
    ImageConstraint,
    MajorityOracle,
    ModelEnsembleTarget,
    ProcessExecutor,
    SerialExecutor,
    SingleModelTarget,
    compare_strategies,
    create_executor,
    create_strategy,
    generate_adversarial_set,
    strategy_names,
)
from repro.obs import CampaignTelemetry, TelemetrySession
from repro.hdc import (
    AssociativeMemory,
    BinaryHDCClassifier,
    BinaryPixelEncoder,
    HDCClassifier,
    ItemMemory,
    LevelMemory,
    NgramEncoder,
    PermutationImageEncoder,
    PixelEncoder,
    RecordEncoder,
)

__all__ = [
    "AdversarialExample",
    "AssociativeMemory",
    "BatchedExecutor",
    "BatchedHDTest",
    "BinaryHDCClassifier",
    "BinaryPixelEncoder",
    "CampaignResult",
    "CampaignTelemetry",
    "ConfigurationError",
    "ConstraintError",
    "CrossModelOracle",
    "Dataset",
    "DatasetError",
    "DefenseReport",
    "EnsembleDebugReport",
    "DimensionMismatchError",
    "EncodingError",
    "FuzzingError",
    "HDCClassifier",
    "HDTest",
    "HDTestConfig",
    "ImageConstraint",
    "ItemMemory",
    "LevelMemory",
    "MajorityOracle",
    "ModelEnsembleTarget",
    "MutationError",
    "NgramEncoder",
    "NotTrainedError",
    "PermutationImageEncoder",
    "PixelEncoder",
    "ProcessExecutor",
    "RecordEncoder",
    "ReproError",
    "SerialExecutor",
    "SingleModelTarget",
    "SyntheticDigitGenerator",
    "TelemetrySession",
    "attack_success_rate",
    "debug_ensemble",
    "ensemble_agreement",
    "compare_strategies",
    "create_executor",
    "create_strategy",
    "generate_adversarial_set",
    "load_digits",
    "make_language_dataset",
    "make_voice_dataset",
    "random_attack",
    "run_defense",
    "strategy_names",
    "__version__",
]
