"""Adversarial-retraining defenses: Sec. V-D and ensemble debugging."""

from repro.defense.retrain import (
    DefenseReport,
    EnsembleDebugReport,
    attack_success_rate,
    debug_ensemble,
    ensemble_agreement,
    run_defense,
)

__all__ = [
    "DefenseReport",
    "EnsembleDebugReport",
    "attack_success_rate",
    "debug_ensemble",
    "ensemble_agreement",
    "run_defense",
]
