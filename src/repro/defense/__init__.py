"""Adversarial-retraining defense (Sec. V-D case study)."""

from repro.defense.retrain import DefenseReport, attack_success_rate, run_defense

__all__ = ["DefenseReport", "attack_success_rate", "run_defense"]
