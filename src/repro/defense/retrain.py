"""Retraining defenses: single-model (Sec. V-D) and ensemble debugging.

The paper's case study (Fig. 8):

1. run HDTest on a trained HDC model until 1000 adversarial images
   exist;
2. randomly split them into two subsets;
3. feed the first subset *with correct labels* back into the model —
   retraining updates the reference HVs;
4. attack the retrained model with the second (unseen) subset.

Before retraining the attack succeeds on 100 % of the held-out images
by construction; after retraining "the rate of successful attack rate
drops more than 20 %".  :func:`run_defense` reproduces the pipeline and
reports both rates plus the clean-accuracy cost of retraining.

:func:`debug_ensemble` is the cross-model analogue, after HDXplore's
debugging loop: fuzz a K-member
:class:`~repro.fuzz.targets.ModelEnsembleTarget` for inputs the members
disagree on, retrain *every* member on those discrepancies labelled by
the ensemble's majority vote (or ground truth when known), and repeat.
The headline success metric is the *resolved rate*: the fraction of
held-out inputs the original members disagreed on that the hardened
ensemble now agrees on (``benchmarks/bench_ensemble_fuzzing.py``
asserts it at scale).  Overall held-out agreement is reported alongside
as the cost view and is *not* guaranteed to rise — see
:class:`EnsembleDebugReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.results import AdversarialExample
from repro.hdc.model import HDCClassifier
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "DefenseReport",
    "run_defense",
    "attack_success_rate",
    "EnsembleDebugReport",
    "ensemble_agreement",
    "debug_ensemble",
]


@dataclass(frozen=True)
class DefenseReport:
    """Outcome of the Fig. 8 defense pipeline.

    Attributes
    ----------
    attack_rate_before:
        Fraction of held-out adversarials that fool the original model
        (1.0 by construction when the same model generated them).
    attack_rate_after:
        Fraction that still fool the retrained model.
    rate_drop:
        ``attack_rate_before − attack_rate_after`` (the paper's
        ">20 %" headline).
    n_retrain, n_attack:
        Sizes of the two subsets.
    clean_accuracy_before, clean_accuracy_after:
        Accuracy on clean test data, when provided — retraining must
        not destroy the model to count as a defense.
    """

    attack_rate_before: float
    attack_rate_after: float
    n_retrain: int
    n_attack: int
    clean_accuracy_before: float = float("nan")
    clean_accuracy_after: float = float("nan")

    @property
    def rate_drop(self) -> float:
        """Absolute drop in attack success rate."""
        return self.attack_rate_before - self.attack_rate_after

    def summary(self) -> dict[str, float]:
        """All fields as a flat dict (report/bench friendly)."""
        return {
            "attack_rate_before": self.attack_rate_before,
            "attack_rate_after": self.attack_rate_after,
            "rate_drop": self.rate_drop,
            "n_retrain": self.n_retrain,
            "n_attack": self.n_attack,
            "clean_accuracy_before": self.clean_accuracy_before,
            "clean_accuracy_after": self.clean_accuracy_after,
        }


def _label_for_retraining(example: AdversarialExample) -> int:
    """The "correct label" fed back during retraining.

    Ground truth when the campaign recorded it; otherwise the reference
    label — which in the differential setting is the model's own
    (correct, for in-budget perturbations) prediction on the original.
    """
    if example.true_label is not None:
        return example.true_label
    return example.reference_label


def attack_success_rate(
    model: HDCClassifier, examples: Sequence[AdversarialExample]
) -> float:
    """Fraction of *examples* whose adversarial input still fools *model*.

    An attack counts as successful when the model's prediction on the
    adversarial image differs from the correct label (see
    :func:`_label_for_retraining`).
    """
    if not examples:
        raise ConfigurationError("examples is empty")
    adversarials = [e.adversarial for e in examples]
    labels = np.asarray([_label_for_retraining(e) for e in examples])
    if isinstance(adversarials[0], np.ndarray):
        batch = np.stack(adversarials)
    else:
        batch = adversarials
    predictions = model.predict(batch)
    return float(np.mean(predictions != labels))


def run_defense(
    model: HDCClassifier,
    examples: Sequence[AdversarialExample],
    *,
    retrain_fraction: float = 0.5,
    mode: str = "adaptive",
    epochs: int = 3,
    clean_inputs: Optional[np.ndarray] = None,
    clean_labels: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> tuple[DefenseReport, HDCClassifier]:
    """Run the Fig. 8 pipeline; returns the report and the hardened model.

    Parameters
    ----------
    model:
        The attacked classifier (left untouched — retraining happens on
        a copy).
    examples:
        Adversarial examples from HDTest (step 1 of Fig. 8 done by the
        caller, e.g. :func:`repro.fuzz.generate_adversarial_set`).
    retrain_fraction:
        Share of examples used for retraining (paper: a random 50/50
        split).
    mode, epochs:
        Passed to :meth:`repro.hdc.model.HDCClassifier.retrain`.
    clean_inputs, clean_labels:
        Optional clean test set for measuring the accuracy cost.
    """
    if not 0.0 < retrain_fraction < 1.0:
        raise ConfigurationError(
            f"retrain_fraction must be in (0, 1), got {retrain_fraction}"
        )
    if len(examples) < 2:
        raise ConfigurationError("need at least 2 adversarial examples to split")
    generator = ensure_rng(rng)
    perm = generator.permutation(len(examples))
    cut = int(round(retrain_fraction * len(examples)))
    if cut == 0 or cut == len(examples):
        raise ConfigurationError(
            f"retrain_fraction={retrain_fraction} leaves an empty subset "
            f"for {len(examples)} examples"
        )
    retrain_set = [examples[i] for i in perm[:cut]]
    attack_set = [examples[i] for i in perm[cut:]]

    rate_before = attack_success_rate(model, attack_set)

    hardened = model.copy()
    retrain_inputs = [e.adversarial for e in retrain_set]
    if isinstance(retrain_inputs[0], np.ndarray):
        retrain_inputs = np.stack(retrain_inputs)
    retrain_labels = np.asarray([_label_for_retraining(e) for e in retrain_set])
    hardened.retrain(retrain_inputs, retrain_labels, mode=mode, epochs=epochs)

    rate_after = attack_success_rate(hardened, attack_set)

    acc_before = float("nan")
    acc_after = float("nan")
    if clean_inputs is not None and clean_labels is not None:
        acc_before = model.score(clean_inputs, clean_labels)
        acc_after = hardened.score(clean_inputs, clean_labels)

    report = DefenseReport(
        attack_rate_before=rate_before,
        attack_rate_after=rate_after,
        n_retrain=len(retrain_set),
        n_attack=len(attack_set),
        clean_accuracy_before=acc_before,
        clean_accuracy_after=acc_after,
    )
    return report, hardened


# -- ensemble debugging (HDXplore-style) ------------------------------------
@dataclass(frozen=True)
class EnsembleDebugReport:
    """Outcome of the cross-model discrepancy-retraining loop.

    The headline number is :attr:`resolved_rate`: of the held-out
    inputs the ensemble *initially disagreed on* (agreement 0 on that
    subset, by construction), what fraction does the retrained ensemble
    now agree on?  That is the generalisation claim — the loop fixes
    disagreements it never trained on.  Overall held-out agreement is
    reported alongside as the cost view: the boundary updates that
    resolve disagreements also perturb decisions on inputs that sat
    near a boundary while agreeing, so the aggregate number can move
    less, or slightly down, while genuinely-disagreeing regions heal
    (the same accuracy-vs-robustness tension ``run_defense`` reports
    through its clean-accuracy columns).

    Attributes
    ----------
    agreement_before, agreement_after:
        Fraction of *all* held-out inputs on which every member
        predicts the same class, before and after retraining.
    n_holdout_disagreements:
        Held-out inputs the original ensemble disagreed on.
    resolved_rate:
        Fraction of those the hardened ensemble fully agrees on
        (NaN when the original ensemble had no held-out disagreements).
    n_discrepancies:
        Total discrepancy inputs fed back across all rounds (seed
        discrepancies and mutated children alike).
    rounds_run:
        Debugging rounds actually executed (the loop stops early when a
        round finds nothing to feed back).
    per_round:
        Discrepancy count of each executed round.
    clean_accuracy_before, clean_accuracy_after:
        Majority-vote accuracy on a labelled clean set, when provided.
    """

    agreement_before: float
    agreement_after: float
    n_holdout_disagreements: int
    resolved_rate: float
    n_discrepancies: int
    rounds_run: int
    per_round: tuple[int, ...]
    clean_accuracy_before: float = float("nan")
    clean_accuracy_after: float = float("nan")

    @property
    def agreement_gain(self) -> float:
        """Absolute change in overall held-out ensemble agreement."""
        return self.agreement_after - self.agreement_before

    def summary(self) -> dict[str, float]:
        """All fields as a flat dict (report/bench friendly)."""
        return {
            "agreement_before": self.agreement_before,
            "agreement_after": self.agreement_after,
            "agreement_gain": self.agreement_gain,
            "n_holdout_disagreements": self.n_holdout_disagreements,
            "resolved_rate": self.resolved_rate,
            "n_discrepancies": self.n_discrepancies,
            "rounds_run": self.rounds_run,
            "clean_accuracy_before": self.clean_accuracy_before,
            "clean_accuracy_after": self.clean_accuracy_after,
        }


def ensemble_agreement(target: Any, inputs: Sequence[Any]) -> float:
    """Fraction of *inputs* on which every member of *target* agrees.

    Delegates to :meth:`ModelEnsembleTarget.agreement` (one definition
    of agreement); accepts any duck-typed target exposing ``predict``.
    """
    agreement = getattr(target, "agreement", None)
    if callable(agreement):
        return float(agreement(inputs))
    return _all_agree_rate(target.predict(inputs))


def _all_agree_rate(member_labels: np.ndarray) -> float:
    """Fraction of columns of a ``(K, n)`` label block that are unanimous.

    A 1-D row (a single model's predictions) coerces to ``(1, n)`` — one
    member always agrees with itself.
    """
    labels = np.atleast_2d(np.asarray(member_labels))
    return float(np.mean((labels == labels[0]).all(axis=0)))


def debug_ensemble(
    target: Any,
    fuzz_inputs: Sequence[Any],
    holdout_inputs: Sequence[Any],
    *,
    strategy: Union[str, Any] = "gauss",
    domain: Any = None,
    config: Any = None,
    rounds: int = 3,
    mode: str = "adaptive",
    epochs: int = 1,
    true_labels: Optional[Sequence[int]] = None,
    clean_inputs: Optional[Sequence[Any]] = None,
    clean_labels: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> tuple[EnsembleDebugReport, Any]:
    """Run the HDXplore debugging loop; returns the report + hardened target.

    Each round fuzzes *fuzz_inputs* with the cross-model oracle (any
    member disagreement counts, including pre-mutation seed
    discrepancies), then retrains **every member** of a copy of
    *target* on the discrepancies — both the original input and its
    adversarial mutation — labelled with the ensemble's majority vote
    on the original input, or ground truth via *true_labels* (aligned
    with *fuzz_inputs*) when the caller has it.  Adaptive mode only
    updates the members that mispredict a retraining input, which is
    exactly HDXplore's per-model correction.  The loop stops early once
    a round surfaces no discrepancies.

    The original *target* is left untouched; agreement is measured on
    *holdout_inputs*, which should be disjoint from *fuzz_inputs* (the
    claim is generalisation, not memorisation — see
    :class:`EnsembleDebugReport` for how to read the two agreement
    metrics).
    """
    from repro.fuzz.batch import BatchedHDTest
    from repro.fuzz.oracle import CrossModelOracle
    from repro.fuzz.targets import ModelEnsembleTarget

    if not isinstance(target, ModelEnsembleTarget):
        raise ConfigurationError(
            f"debug_ensemble needs a ModelEnsembleTarget, got {type(target).__name__}"
        )
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    if len(fuzz_inputs) == 0 or len(holdout_inputs) == 0:
        raise ConfigurationError("fuzz_inputs and holdout_inputs must be non-empty")
    if true_labels is not None and len(true_labels) != len(fuzz_inputs):
        raise ConfigurationError(
            f"{len(true_labels)} true_labels for {len(fuzz_inputs)} fuzz_inputs"
        )
    generator = ensure_rng(rng)

    hardened = target.copy()
    # One K-member prediction pass per phase serves both agreement
    # metrics (the holdout is the most expensive non-fuzzing work here).
    before_labels = hardened.predict(holdout_inputs)
    agreement_before = _all_agree_rate(before_labels)
    disagreed_mask = ~(before_labels == before_labels[0]).all(axis=0)
    acc_before = acc_after = float("nan")
    if clean_inputs is not None and clean_labels is not None:
        acc_before = float(
            np.mean(hardened.majority_predict(clean_inputs) == np.asarray(clean_labels))
        )

    per_round: list[int] = []
    for _ in range(rounds):
        engine = BatchedHDTest(
            hardened, strategy, domain=domain, config=config,
            oracle=CrossModelOracle(), rng=generator,
        )
        result = engine.fuzz(fuzz_inputs)
        found = [
            (position, outcome.example)
            for position, outcome in enumerate(result.outcomes)
            if outcome.success
        ]
        per_round.append(len(found))
        if not found:
            break
        # Feed back the natural input *and* its mutation: the original
        # anchors the member on the manifold, the child marks the
        # boundary crossing the fuzzer exploited.  (For iteration-0
        # seed discrepancies the two coincide; the duplicate is a no-op
        # for members that already predict the label.)
        retrain_inputs = [example.original for _, example in found] + [
            example.adversarial for _, example in found
        ]
        if isinstance(retrain_inputs[0], np.ndarray):
            retrain_inputs = np.stack(retrain_inputs)
        labels = np.asarray(
            [
                int(true_labels[position])
                if true_labels is not None
                else _label_for_retraining(example)
                for position, example in found
            ]
            * 2
        )
        for member in hardened.members:
            member.retrain(retrain_inputs, labels, mode=mode, epochs=epochs)

    after_labels = hardened.predict(holdout_inputs)
    agreement_after = _all_agree_rate(after_labels)
    resolved_rate = (
        _all_agree_rate(after_labels[:, disagreed_mask])
        if disagreed_mask.any()
        else float("nan")
    )
    if clean_inputs is not None and clean_labels is not None:
        acc_after = float(
            np.mean(hardened.majority_predict(clean_inputs) == np.asarray(clean_labels))
        )
    report = EnsembleDebugReport(
        agreement_before=agreement_before,
        agreement_after=agreement_after,
        n_holdout_disagreements=int(disagreed_mask.sum()),
        resolved_rate=resolved_rate,
        n_discrepancies=int(sum(per_round)),
        rounds_run=len(per_round),
        per_round=tuple(per_round),
        clean_accuracy_before=acc_before,
        clean_accuracy_after=acc_after,
    )
    return report, hardened
