"""Retraining defense against adversarial attacks (Sec. V-D, Fig. 8).

The paper's case study:

1. run HDTest on a trained HDC model until 1000 adversarial images
   exist;
2. randomly split them into two subsets;
3. feed the first subset *with correct labels* back into the model —
   retraining updates the reference HVs;
4. attack the retrained model with the second (unseen) subset.

Before retraining the attack succeeds on 100 % of the held-out images
by construction; after retraining "the rate of successful attack rate
drops more than 20 %".  :func:`run_defense` reproduces the pipeline and
reports both rates plus the clean-accuracy cost of retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.results import AdversarialExample
from repro.hdc.model import HDCClassifier
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["DefenseReport", "run_defense", "attack_success_rate"]


@dataclass(frozen=True)
class DefenseReport:
    """Outcome of the Fig. 8 defense pipeline.

    Attributes
    ----------
    attack_rate_before:
        Fraction of held-out adversarials that fool the original model
        (1.0 by construction when the same model generated them).
    attack_rate_after:
        Fraction that still fool the retrained model.
    rate_drop:
        ``attack_rate_before − attack_rate_after`` (the paper's
        ">20 %" headline).
    n_retrain, n_attack:
        Sizes of the two subsets.
    clean_accuracy_before, clean_accuracy_after:
        Accuracy on clean test data, when provided — retraining must
        not destroy the model to count as a defense.
    """

    attack_rate_before: float
    attack_rate_after: float
    n_retrain: int
    n_attack: int
    clean_accuracy_before: float = float("nan")
    clean_accuracy_after: float = float("nan")

    @property
    def rate_drop(self) -> float:
        """Absolute drop in attack success rate."""
        return self.attack_rate_before - self.attack_rate_after

    def summary(self) -> dict[str, float]:
        """All fields as a flat dict (report/bench friendly)."""
        return {
            "attack_rate_before": self.attack_rate_before,
            "attack_rate_after": self.attack_rate_after,
            "rate_drop": self.rate_drop,
            "n_retrain": self.n_retrain,
            "n_attack": self.n_attack,
            "clean_accuracy_before": self.clean_accuracy_before,
            "clean_accuracy_after": self.clean_accuracy_after,
        }


def _label_for_retraining(example: AdversarialExample) -> int:
    """The "correct label" fed back during retraining.

    Ground truth when the campaign recorded it; otherwise the reference
    label — which in the differential setting is the model's own
    (correct, for in-budget perturbations) prediction on the original.
    """
    if example.true_label is not None:
        return example.true_label
    return example.reference_label


def attack_success_rate(
    model: HDCClassifier, examples: Sequence[AdversarialExample]
) -> float:
    """Fraction of *examples* whose adversarial input still fools *model*.

    An attack counts as successful when the model's prediction on the
    adversarial image differs from the correct label (see
    :func:`_label_for_retraining`).
    """
    if not examples:
        raise ConfigurationError("examples is empty")
    adversarials = [e.adversarial for e in examples]
    labels = np.asarray([_label_for_retraining(e) for e in examples])
    if isinstance(adversarials[0], np.ndarray):
        batch = np.stack(adversarials)
    else:
        batch = adversarials
    predictions = model.predict(batch)
    return float(np.mean(predictions != labels))


def run_defense(
    model: HDCClassifier,
    examples: Sequence[AdversarialExample],
    *,
    retrain_fraction: float = 0.5,
    mode: str = "adaptive",
    epochs: int = 3,
    clean_inputs: Optional[np.ndarray] = None,
    clean_labels: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> tuple[DefenseReport, HDCClassifier]:
    """Run the Fig. 8 pipeline; returns the report and the hardened model.

    Parameters
    ----------
    model:
        The attacked classifier (left untouched — retraining happens on
        a copy).
    examples:
        Adversarial examples from HDTest (step 1 of Fig. 8 done by the
        caller, e.g. :func:`repro.fuzz.generate_adversarial_set`).
    retrain_fraction:
        Share of examples used for retraining (paper: a random 50/50
        split).
    mode, epochs:
        Passed to :meth:`repro.hdc.model.HDCClassifier.retrain`.
    clean_inputs, clean_labels:
        Optional clean test set for measuring the accuracy cost.
    """
    if not 0.0 < retrain_fraction < 1.0:
        raise ConfigurationError(
            f"retrain_fraction must be in (0, 1), got {retrain_fraction}"
        )
    if len(examples) < 2:
        raise ConfigurationError("need at least 2 adversarial examples to split")
    generator = ensure_rng(rng)
    perm = generator.permutation(len(examples))
    cut = int(round(retrain_fraction * len(examples)))
    if cut == 0 or cut == len(examples):
        raise ConfigurationError(
            f"retrain_fraction={retrain_fraction} leaves an empty subset "
            f"for {len(examples)} examples"
        )
    retrain_set = [examples[i] for i in perm[:cut]]
    attack_set = [examples[i] for i in perm[cut:]]

    rate_before = attack_success_rate(model, attack_set)

    hardened = model.copy()
    retrain_inputs = [e.adversarial for e in retrain_set]
    if isinstance(retrain_inputs[0], np.ndarray):
        retrain_inputs = np.stack(retrain_inputs)
    retrain_labels = np.asarray([_label_for_retraining(e) for e in retrain_set])
    hardened.retrain(retrain_inputs, retrain_labels, mode=mode, epochs=epochs)

    rate_after = attack_success_rate(hardened, attack_set)

    acc_before = float("nan")
    acc_after = float("nan")
    if clean_inputs is not None and clean_labels is not None:
        acc_before = model.score(clean_inputs, clean_labels)
        acc_after = hardened.score(clean_inputs, clean_labels)

    report = DefenseReport(
        attack_rate_before=rate_before,
        attack_rate_after=rate_after,
        n_retrain=len(retrain_set),
        n_attack=len(attack_set),
        clean_accuracy_before=acc_before,
        clean_accuracy_after=acc_after,
    )
    return report, hardened
