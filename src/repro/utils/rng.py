"""Deterministic random-number management.

Every stochastic component of the library accepts either an integer
seed, a :class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng`
normalises those three cases into a Generator.  :func:`spawn` derives
independent child generators so that, e.g., the dataset, the model
codebooks, and each mutation strategy draw from decorrelated streams
while the whole pipeline stays reproducible from a single root seed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "RngLike",
    "ensure_rng",
    "spawn",
    "derive_seed",
    "derive_seeds",
    "SeedSequenceFactory",
]

#: Anything acceptable as a randomness source.
RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an ``int`` seed, a
        :class:`~numpy.random.SeedSequence`, or an existing Generator
        (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ConfigurationError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise ConfigurationError(
        f"expected None, int, SeedSequence or Generator, got {type(rng).__name__}"
    )


def derive_seeds(rng: RngLike, n: int) -> np.ndarray:
    """Draw *n* 63-bit child seeds from *rng* (the stream :func:`spawn` uses).

    Exposed separately so schedulers that must ship plain integers to
    subprocesses draw from the *same* stream as :func:`spawn` — a
    generator built from ``derive_seeds(rng, n)[i]`` equals
    ``spawn(rng, n)[i]``.
    """
    if n < 0:
        raise ConfigurationError(f"cannot derive a negative number of seeds ({n})")
    return ensure_rng(rng).integers(0, 2**63 - 1, size=n, dtype=np.int64)


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *rng*."""
    return [np.random.default_rng(int(s)) for s in derive_seeds(rng, n)]


def derive_seed(rng: RngLike) -> int:
    """Draw one 63-bit seed from *rng* (for handing to subprocesses/logs)."""
    return int(ensure_rng(rng).integers(0, 2**63 - 1, dtype=np.int64))


class SeedSequenceFactory:
    """Names-to-generators factory with a stable derivation scheme.

    ``SeedSequenceFactory(1234).get("codebooks")`` always yields the same
    generator for the same root seed and name, regardless of call order.
    This is what lets independently-constructed components agree on their
    randomness without threading Generator objects through every call.
    """

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, (int, np.integer)) or root_seed < 0:
            raise ConfigurationError(f"root_seed must be a non-negative int, got {root_seed!r}")
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator derived from ``(root_seed, name)``."""
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"name must be a non-empty string, got {name!r}")
        # Fold the name into entropy deterministically (hash() is salted
        # per-process, so use the bytes directly instead).
        entropy = [self._root_seed] + list(name.encode("utf-8"))
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def get_many(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return ``{name: generator}`` for every name in *names*."""
        return {name: self.get(name) for name in names}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeedSequenceFactory(root_seed={self._root_seed})"
