"""A minimal LRU cache for encode memoisation.

The fuzzing loop memoises ``child bytes → hypervector`` so repeated
children (ubiquitous for discrete strategies like ``shift``) are
encoded once.  Unbounded, that dict can accumulate thousands of
10 000-dimensional vectors for continuous strategies whose children
never repeat — :class:`LRUCache` caps it with least-recently-used
eviction so the memory footprint stays proportional to the working set
that actually produces hits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Optional, Sequence, TypeVar

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LRUCache", "resolve_with_cache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    max_entries:
        Capacity; inserting beyond it evicts the least recently used
        entry.  Both :meth:`get` hits and :meth:`put` updates refresh
        recency.

    Examples
    --------
    >>> cache = LRUCache(2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)  # evicts "b", the least recently used
    >>> cache.get("b") is None
    True
    >>> len(cache)
    2
    """

    def __init__(self, max_entries: int) -> None:
        # np.integer included: HDTestConfig accepts numpy ints, and the
        # capacity it validated must not be re-rejected mid-fuzz here.
        if not isinstance(max_entries, (int, np.integer)) or max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be a positive int, got {max_entries!r}"
            )
        self._max_entries = int(max_entries)
        self._data: OrderedDict[K, V] = OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def max_entries(self) -> int:
        """Capacity of the cache."""
        return self._max_entries

    @property
    def hits(self) -> int:
        """Number of :meth:`get` calls that found their key."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of :meth:`get` calls that did not."""
        return self._misses

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K) -> Optional[V]:
        """Return the cached value for *key* (refreshing it), else None."""
        try:
            value = self._data[key]
        except KeyError:
            self._misses += 1
            return None
        self._data.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/update *key*, evicting the LRU entry when over capacity."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self._max_entries:
            self._data.popitem(last=False)

    def resize(self, max_entries: int) -> None:
        """Change the capacity, evicting LRU entries when shrinking.

        Lets long-lived cache pools re-share one memory budget as the
        number of live caches changes, without discarding warm entries
        that still fit.
        """
        if not isinstance(max_entries, (int, np.integer)) or max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be a positive int, got {max_entries!r}"
            )
        self._max_entries = int(max_entries)
        while len(self._data) > self._max_entries:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are retained)."""
        self._data.clear()

    def __repr__(self) -> str:
        return (
            f"LRUCache(max_entries={self._max_entries}, size={len(self._data)}, "
            f"hits={self._hits}, misses={self._misses})"
        )


def resolve_with_cache(
    cache: LRUCache[K, V],
    keys: Sequence[K],
    compute_missing: Callable[[list[int]], Sequence[V]],
) -> list[V]:
    """One value per key, memoised through *cache*.

    ``compute_missing`` receives the positions (into *keys*) of the
    first occurrence of each key the cache doesn't hold, and must return
    one value per position, in order.  Every distinct key is computed at
    most once per call, and all values used this call are pinned in an
    iteration-local dict — LRU eviction in the shared cache can
    therefore never drop an entry between its lookup and its use.  This
    is the dedupe discipline shared by the sequential and batched
    fuzzing engines.
    """
    local: dict[K, Optional[V]] = {}
    misses: list[int] = []
    for position, key in enumerate(keys):
        if key not in local:
            local[key] = cache.get(key)
            if local[key] is None:
                misses.append(position)
    if misses:
        fresh = compute_missing(misses)
        if len(fresh) != len(misses):
            raise ConfigurationError(
                f"compute_missing returned {len(fresh)} values for {len(misses)} keys"
            )
        for position, value in zip(misses, fresh):
            local[keys[position]] = value
            cache.put(keys[position], value)
    return [local[key] for key in keys]
