"""Refcounted shared-memory arena: zero-copy ndarray broadcast for pools.

The process executors ship ndarrays between the campaign parent and its
workers.  Pickling those arrays through multiprocessing pipes copies
every byte twice (serialise + deserialise) per worker per message; for
the member-sharded executor — which broadcasts one child block to K
workers *every iteration* — that cost scales with K while the payload
is identical for every worker.  :class:`ShmArena` instead places each
broadcast array in a named ``multiprocessing.shared_memory`` segment
once and ships a tiny picklable :class:`ShmRef` handle; workers map the
segment and read the bytes in place, so per-iteration IPC carries only
handles, shard indices, and vote arrays.

Design notes
------------
* **Refcounted lifecycle** — the arena owns its segments.  ``share``
  creates a segment with refcount 1; :meth:`ShmArena.retain` /
  :meth:`ShmArena.release` move the count and the segment is unlinked
  at zero.  :meth:`ShmArena.close` (also run by the GC finalizer)
  unlinks everything still live, so a dropped arena never leaks
  ``/dev/shm`` entries (tested in ``tests/utils/test_shm.py``).
* **Scratch segments** — per-iteration payloads reuse one named slot
  per logical *key* (``scratch_write``), growing geometrically instead
  of allocating a fresh segment per message.
* **Fork/spawn-safe attach** — :func:`attach_array` maps a ref in any
  process.  CPython ≤ 3.12 registers *attaching* processes with the
  resource tracker too, which makes the tracker unlink segments that
  the creator still owns (python/cpython#82300); the attach path
  suppresses that registration, leaving exactly one owner — the arena.
  A forked child that inherits an arena object must never unlink the
  parent's segments, so ownership is pinned to the creating PID.
"""

from __future__ import annotations

import os
import pickle
import sys
import weakref
from multiprocessing import shared_memory
from typing import Any, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "SHM_REF_NBYTES",
    "ShmArena",
    "ShmRef",
    "attach_array",
    "detach_all",
    "payload_nbytes",
]

#: Approximate pickled size of one :class:`ShmRef` handle — what a
#: shared array actually costs on the wire (telemetry uses this).
SHM_REF_NBYTES = 96


class ShmRef:
    """A picklable handle to one array living in a shared segment.

    Attributes
    ----------
    key:
        Logical slot name (``"children"``, ``"hvs"``, …).  Attach-side
        caching is keyed by it: when a scratch slot grows into a new
        segment, the next attach under the same key drops the stale
        mapping automatically.
    name:
        The OS-level shared-memory segment name.
    shape / dtype:
        How to view the segment's leading bytes as an ndarray.
    """

    __slots__ = ("key", "name", "shape", "dtype")

    def __init__(self, key: str, name: str, shape: tuple, dtype: str) -> None:
        self.key = key
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = str(dtype)

    @property
    def nbytes(self) -> int:
        """Bytes of the viewed array (not the — possibly larger — segment)."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def __getstate__(self):
        return (self.key, self.name, self.shape, self.dtype)

    def __setstate__(self, state):
        self.key, self.name, self.shape, self.dtype = state

    def __repr__(self) -> str:
        return (
            f"ShmRef(key={self.key!r}, name={self.name!r}, "
            f"shape={self.shape}, dtype={self.dtype!r})"
        )


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without resource-tracker registration.

    On CPython ≤ 3.12 ``SharedMemory(name=...)`` registers even pure
    *attaches* with the resource tracker, so a worker exiting (or the
    tracker shutting down) can unlink a segment its parent still owns
    and spam "leaked shared_memory" warnings (python/cpython#82300;
    3.13 grew ``track=False`` for exactly this).  Suppressing the
    registration during attach keeps ownership where it belongs: the
    creating arena registers once and unlinks once.
    """
    if sys.platform == "win32":  # pragma: no cover - windows has no tracker
        return shared_memory.SharedMemory(name=name)
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


# -- worker-side attach cache ------------------------------------------------
# One mapping per logical key (stale segment names are unmapped when a
# grown scratch slot arrives) plus the PID that owns the cache: a forked
# child inherits the dict but must not reuse the parent's mappings.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_ATTACHED_PID: Optional[int] = None


def attach_array(ref: ShmRef) -> np.ndarray:
    """View *ref*'s array inside the current process (read-only).

    Mappings are cached per logical key, so the steady-state cost of a
    reused scratch slot is a dict lookup.  The returned view aliases
    the shared bytes — callers that retain data across messages must
    copy (scratch slots are rewritten by the next broadcast).
    """
    global _ATTACHED_PID
    if _ATTACHED_PID != os.getpid():
        # Forked child: parent's mmap handles are unusable state here.
        _ATTACHED.clear()
        _ATTACHED_PID = os.getpid()
    segment = _ATTACHED.get(ref.key)
    if segment is None or segment.name.lstrip("/") != ref.name.lstrip("/"):
        if segment is not None:
            segment.close()
        segment = _ATTACHED[ref.key] = _attach_segment(ref.name)
    view = np.ndarray(ref.shape, dtype=ref.dtype, buffer=segment.buf)
    view.flags.writeable = False
    return view


def detach_all() -> None:
    """Unmap every cached attachment (worker shutdown hygiene)."""
    for segment in _ATTACHED.values():
        segment.close()
    _ATTACHED.clear()


class ShmArena:
    """Owner of a set of shared segments with refcounted lifecycle.

    The creating process is the sole owner: only it unlinks.  Segments
    are created by :meth:`share` (one-shot payloads, refcount 1) or
    :meth:`scratch_write` (reusable per-key slots, alive until
    :meth:`close`).  The arena is a context manager and also cleans up
    from a GC finalizer, so no code path leaks ``/dev/shm`` entries.
    """

    def __init__(self) -> None:
        self._owner_pid = os.getpid()
        # name → [SharedMemory, refcount]; scratch slots carry refcount
        # None (immortal until close).
        self._segments: dict[str, list] = {}
        self._scratch: dict[str, str] = {}  # key → segment name
        self._shared_bytes = 0
        self._finalizer = weakref.finalize(
            self, ShmArena._finalize, self._owner_pid, self._segments
        )

    # -- introspection -------------------------------------------------------
    @property
    def open_segments(self) -> int:
        """Live segment count (tests assert this reaches 0 after close)."""
        return len(self._segments)

    @property
    def shared_bytes(self) -> int:
        """Total bytes ever copied into this arena's segments."""
        return self._shared_bytes

    # -- allocation ----------------------------------------------------------
    def _create(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._owner_pid != os.getpid():
            raise ConfigurationError(
                "ShmArena segments must be created by the owning process "
                f"(owner pid {self._owner_pid}, current {os.getpid()})"
            )
        return shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))

    def share(self, array: np.ndarray, *, key: str = "") -> ShmRef:
        """Copy *array* into a fresh segment (refcount 1) → its ref."""
        array = np.ascontiguousarray(array)
        segment = self._create(array.nbytes)
        self._segments[segment.name] = [segment, 1]
        self._write(segment, array)
        return ShmRef(key or segment.name, segment.name, array.shape, array.dtype.str)

    def scratch_write(self, key: str, array: np.ndarray) -> ShmRef:
        """Write *array* into the reusable slot *key* → a ref to read it.

        The slot's segment is grown (1.5× geometric headroom) when the
        payload outgrows it; the previous segment is unlinked and the
        returned ref's fresh name tells attached readers to remap.
        """
        array = np.ascontiguousarray(array)
        name = self._scratch.get(key)
        entry = self._segments.get(name) if name is not None else None
        if entry is None or entry[0].size < array.nbytes:
            if entry is not None:
                self._unlink(name)
            segment = self._create(max(array.nbytes, int(array.nbytes * 1.5)))
            self._segments[segment.name] = [segment, None]
            self._scratch[key] = segment.name
            entry = self._segments[segment.name]
        self._write(entry[0], array)
        return ShmRef(key, entry[0].name, array.shape, array.dtype.str)

    def allocator(self, key: str):
        """An ``(shape, dtype) -> ndarray`` allocator over slot *key*.

        Lets array containers (e.g. :class:`~repro.fuzz.seeds.SeedPoolBatch`)
        place their backing blocks directly in shared memory; the
        matching ref for readers is ``ref_for(key, shape, dtype)``.

        The closure hands out rotating sub-slots (``key.0``, ``key.1``,
        …): the *n*-th allocation of a fresh ``allocator(key)`` replaces
        the *n*-th allocation of the previous one, so containers rebuilt
        every run (one pool per chunk) reuse segment slots instead of
        accumulating segments until :meth:`close`.
        """
        counter = [0]

        def allocate(shape: tuple, dtype: Any) -> np.ndarray:
            slot = f"{key}.{counter[0]}"
            counter[0] += 1
            prior = self._scratch.pop(slot, None)
            if prior is not None:
                self._unlink(prior)
            nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            segment = self._create(nbytes)
            self._segments[segment.name] = [segment, None]
            self._scratch[slot] = segment.name
            block = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
            block[...] = np.zeros((), dtype=dtype)
            return block

        return allocate

    def ref_for(self, key: str, shape: tuple, dtype: Any) -> ShmRef:
        """The ref of slot *key* viewed as ``(shape, dtype)``."""
        name = self._scratch.get(key)
        if name is None:
            raise ConfigurationError(f"arena has no scratch slot {key!r}")
        return ShmRef(key, name, tuple(shape), np.dtype(dtype).str)

    def _write(self, segment: shared_memory.SharedMemory, array: np.ndarray) -> None:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._shared_bytes += array.nbytes

    # -- refcounting ---------------------------------------------------------
    def retain(self, ref: ShmRef) -> ShmRef:
        """Bump a shared segment's refcount (one more release required)."""
        entry = self._segments.get(ref.name)
        if entry is None:
            raise ConfigurationError(f"{ref!r} does not belong to this arena")
        if entry[1] is not None:
            entry[1] += 1
        return ref

    def release(self, ref: ShmRef) -> None:
        """Drop one reference; the segment is unlinked at refcount 0."""
        entry = self._segments.get(ref.name)
        if entry is None:
            return  # already unlinked — release is idempotent by design
        if entry[1] is not None:
            entry[1] -= 1
            if entry[1] <= 0:
                self._unlink(ref.name)

    def _unlink(self, name: str) -> None:
        entry = self._segments.pop(name, None)
        if entry is None:
            return
        segment = entry[0]
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a live view still maps it
            # unlink below still removes the name; the pages are freed
            # when the last mapping (the straggler view) dies.
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup won
            pass

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Unlink every live segment (no-op in forked children)."""
        if self._owner_pid != os.getpid():
            return
        for name in list(self._segments):
            self._unlink(name)
        self._scratch.clear()

    @staticmethod
    def _finalize(owner_pid: int, segments: dict) -> None:
        if owner_pid != os.getpid():
            return
        for entry in list(segments.values()):
            segment = entry[0]
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live view at GC time
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        segments.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShmArena(segments={self.open_segments}, "
            f"shared_bytes={self._shared_bytes})"
        )


def payload_nbytes(obj: Any) -> int:
    """Approximate bytes *obj* costs when pickled through an IPC channel.

    The telemetry layer's ``broadcast_bytes`` counter uses this instead
    of ``len(pickle.dumps(...))`` so instrumented runs never pay a
    second serialisation of large arrays: ndarrays count their buffer,
    shm refs count their handle size (:data:`SHM_REF_NBYTES` — the
    whole point of the zero-copy path), containers recurse, and only
    unknown leaves (models at pool-build time) fall back to a real
    pickle measurement.
    """
    if obj is None or isinstance(obj, (bool, int, float)):
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 16
    if isinstance(obj, ShmRef):
        return SHM_REF_NBYTES
    if isinstance(obj, (bytes, bytearray, str)):
        return len(obj) + 8
    if isinstance(obj, dict):
        return 16 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set)):
        return 16 + sum(payload_nbytes(item) for item in obj)
    return len(pickle.dumps(obj))
