"""Shared utilities: RNG plumbing, argument validation, and caching."""

from repro.utils.cache import LRUCache
from repro.utils.rng import (
    RngLike,
    SeedSequenceFactory,
    derive_seed,
    derive_seeds,
    ensure_rng,
    spawn,
)
from repro.utils.validation import (
    as_image_batch,
    as_single_image,
    check_in_choices,
    check_labels,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_same_shape,
)

__all__ = [
    "LRUCache",
    "RngLike",
    "SeedSequenceFactory",
    "derive_seed",
    "derive_seeds",
    "ensure_rng",
    "spawn",
    "as_image_batch",
    "as_single_image",
    "check_in_choices",
    "check_labels",
    "check_non_negative_int",
    "check_positive_float",
    "check_positive_int",
    "check_probability",
    "check_same_shape",
]
