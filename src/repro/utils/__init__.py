"""Shared utilities: RNG plumbing, validation, caching, shared memory."""

from repro.utils.cache import LRUCache
from repro.utils.shm import ShmArena, ShmRef, attach_array, payload_nbytes
from repro.utils.rng import (
    RngLike,
    SeedSequenceFactory,
    derive_seed,
    derive_seeds,
    ensure_rng,
    spawn,
)
from repro.utils.validation import (
    as_image_batch,
    as_single_image,
    check_in_choices,
    check_labels,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_same_shape,
)

__all__ = [
    "LRUCache",
    "ShmArena",
    "ShmRef",
    "attach_array",
    "payload_nbytes",
    "RngLike",
    "SeedSequenceFactory",
    "derive_seed",
    "derive_seeds",
    "ensure_rng",
    "spawn",
    "as_image_batch",
    "as_single_image",
    "check_in_choices",
    "check_labels",
    "check_non_negative_int",
    "check_positive_float",
    "check_positive_int",
    "check_probability",
    "check_same_shape",
]
