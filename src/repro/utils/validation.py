"""Shared argument-validation helpers.

These helpers raise the library's own exception types with messages that
name the offending parameter, so call sites stay one-liners and error
messages stay uniform across the code base.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, EncodingError

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_positive_float",
    "check_in_choices",
    "as_image_batch",
    "as_single_image",
    "check_same_shape",
    "check_labels",
]


def check_positive_int(value: Any, name: str) -> int:
    """Return *value* as int, requiring ``value >= 1``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Return *value* as int, requiring ``value >= 0``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_probability(value: Any, name: str) -> float:
    """Return *value* as float, requiring ``0 <= value <= 1``."""
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a float, got {type(value).__name__}") from None
    if not 0.0 <= out <= 1.0 or np.isnan(out):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return out


def check_positive_float(value: Any, name: str, *, allow_zero: bool = False) -> float:
    """Return *value* as float, requiring it to be positive (or >= 0)."""
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a float, got {type(value).__name__}") from None
    if np.isnan(out) or (out <= 0.0 and not allow_zero) or out < 0.0:
        bound = ">= 0" if allow_zero else "> 0"
        raise ConfigurationError(f"{name} must be {bound}, got {value}")
    return out


def check_in_choices(value: Any, name: str, choices: Sequence[Any]) -> Any:
    """Require *value* to be one of *choices* and return it."""
    if value not in choices:
        raise ConfigurationError(f"{name} must be one of {list(choices)}, got {value!r}")
    return value


def as_image_batch(
    images: Any,
    *,
    shape: Optional[tuple[int, int]] = None,
    name: str = "images",
) -> np.ndarray:
    """Coerce *images* into a ``(n, H, W)`` float64 batch in [0, 255].

    Accepts a single ``(H, W)`` image (promoted to a batch of one) or a
    batch.  Raises :class:`EncodingError` on wrong rank, wrong spatial
    shape (when *shape* is given), NaNs, or out-of-range values.
    """
    arr = np.asarray(images, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[None, :, :]
    if arr.ndim != 3:
        raise EncodingError(f"{name} must have shape (H, W) or (n, H, W), got {arr.shape}")
    if shape is not None and arr.shape[1:] != tuple(shape):
        raise EncodingError(f"{name} must be {shape} images, got {arr.shape[1:]}")
    if arr.size == 0:
        raise EncodingError(f"{name} is empty")
    if np.isnan(arr).any():
        raise EncodingError(f"{name} contains NaN values")
    if arr.min() < 0.0 or arr.max() > 255.0:
        raise EncodingError(
            f"{name} values must lie in [0, 255], got range "
            f"[{arr.min():.3f}, {arr.max():.3f}]"
        )
    return arr


def as_single_image(
    image: Any, *, shape: Optional[tuple[int, int]] = None, name: str = "image"
) -> np.ndarray:
    """Coerce *image* into one ``(H, W)`` float64 image in [0, 255]."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise EncodingError(f"{name} must have shape (H, W), got {arr.shape}")
    return as_image_batch(arr, shape=shape, name=name)[0]


def check_same_shape(a: np.ndarray, b: np.ndarray, *, names: tuple[str, str] = ("a", "b")) -> None:
    """Raise :class:`DimensionMismatchError` unless *a* and *b* share a shape."""
    if a.shape != b.shape:
        raise DimensionMismatchError(
            f"{names[0]} and {names[1]} must have the same shape, got {a.shape} vs {b.shape}"
        )


def check_labels(labels: Any, n: int, *, name: str = "labels") -> np.ndarray:
    """Coerce *labels* to a length-*n* int64 vector of non-negative ints."""
    arr = np.asarray(labels)
    if arr.ndim != 1 or arr.shape[0] != n:
        raise ConfigurationError(f"{name} must be a length-{n} 1-D array, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.all(np.equal(np.mod(arr, 1), 0)):
            raise ConfigurationError(f"{name} must be integers")
    arr = arr.astype(np.int64)
    if (arr < 0).any():
        raise ConfigurationError(f"{name} must be non-negative")
    return arr
