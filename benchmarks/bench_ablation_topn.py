"""Ablation: seed-pool size N (the paper fixes N = 3).

Sec. IV: "only the top-N fittest seeds can survive (In our
experiments, N = 3)."  This sweep shows what that choice buys: N = 1
is greedy hill-climbing (fast per iteration, can stall), larger pools
explore more but re-encode more children per iteration.
"""

from __future__ import annotations

import pytest

from conftest import run_once

from repro.fuzz import HDTest, HDTestConfig

N_IMAGES = 10


@pytest.mark.parametrize("top_n", [1, 3, 6])
def test_topn_sweep(benchmark, paper_model, fuzz_images, top_n):
    def campaign():
        fuzzer = HDTest(
            paper_model,
            "rand",
            config=HDTestConfig(iter_times=60, top_n=top_n),
            rng=41,
        )
        return fuzzer.fuzz(fuzz_images[:N_IMAGES])

    result = run_once(benchmark, campaign)
    print(f"\n[ablation top_n={top_n}] success={result.success_rate:.2f} "
          f"iters={result.avg_iterations:.1f} "
          f"elapsed={result.elapsed_seconds:.1f}s")
    # Every pool size should still find adversarials for most inputs.
    assert result.success_rate >= 0.5
