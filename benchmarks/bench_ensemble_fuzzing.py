"""Ensemble fuzzing: K-model lock-step vs a serial per-member loop.

Two claims are pinned at paper scale (D = 10 000):

* **throughput** — fuzzing a K = 5 :class:`ModelEnsembleTarget` with the
  lock-step batched engine (one fused delta-encode + one fused AM query
  per member per iteration, across every active input) must never fall
  behind the naive schedule: the sequential per-input loop re-encoding
  every child from scratch through each member in turn.  Outcomes are
  identical (asserted here under the shared RNG discipline).  The bar
  was 2× when the naive loop dispatched one encode kernel per child;
  the fused block kernels now serve *every* schedule, which closed
  that gap to parity on a single core (the naive arm got ~4× faster,
  lock-step's absolute throughput is unchanged) — so the bar pins
  parity, and lock-step's remaining edge is structural: cross-input
  fusion as campaigns widen, delta encoding under sparse mutators
  (``gauss`` here is dense), and fused K-member queries as per-query
  cost grows.
* **debugging** — the HDXplore-style discrepancy-retraining loop
  (:func:`repro.defense.debug_ensemble`) must *measurably* raise
  ensemble agreement on held-out inputs the original members disagreed
  on: ``resolved_rate ≥ MIN_RESOLVED_RATE``.

It also quantifies the **diversity cost** of shared codebooks: a
:class:`~repro.fuzz.targets.SharedCodebookEnsembleTarget` (one item
memory, members bagged) against a
:class:`~repro.fuzz.targets.ModelEnsembleTarget` (independent item
memories) at the same K — held-out all-member agreement and the
cross-model discrepancy yield of an identical campaign.  Sharing the
codebook buys the encode-once hot path (``bench_shared_codebook.py``)
but correlates the members; these two numbers, written to the bench's
JSON record, are the price.

Run under pytest (full scale)::

    pytest benchmarks/bench_ensemble_fuzzing.py --benchmark-only -s

or standalone for a quick smoke reading (used by CI)::

    python benchmarks/bench_ensemble_fuzzing.py --quick
"""

from __future__ import annotations

import time

import numpy as np

from repro.defense import debug_ensemble
from repro.fuzz import (
    BatchedHDTest,
    HDTest,
    HDTestConfig,
    ModelEnsembleTarget,
)
from repro.fuzz.oracle import CrossModelOracle
from repro.fuzz.targets import SharedCodebookEnsembleTarget
from repro.utils.rng import spawn

K_MEMBERS = 5
N_IMAGES = 8
ITER_TIMES = 30
SEED = 17

#: Lock-step inputs/sec over the serial per-member scratch loop.
#: Parity with noise margin — see the module docstring: the historic
#: 2-4x gap was per-child encode dispatch, which the fused block
#: kernels removed from the naive schedule too.
MIN_LOCKSTEP_SPEEDUP = 0.9
#: Fraction of held-out disagreements the debugging loop must resolve.
MIN_RESOLVED_RATE = 0.10


def _outcome_key(outcome):
    return (outcome.success, outcome.iterations, outcome.reference_label)


def run_lockstep_vs_serial(ensemble, images, *, iter_times=ITER_TIMES, rng=SEED):
    """Time both schedules on identical work; returns (rows, outcomes equal)."""
    config = HDTestConfig(iter_times=iter_times)
    images = list(images)

    start = time.perf_counter()
    serial_engine = HDTest(ensemble, "gauss", config=config)
    # The naive schedule: per-input loop, every child re-encoded from
    # scratch through each member in turn (no delta, no cross-input
    # fusion) — what ensemble fuzzing costs without the lock-step engine.
    serial_engine._delta_encoder = lambda: None  # noqa: SLF001 - bench baseline
    serial = [
        serial_engine.fuzz_one(x, rng=g)
        for x, g in zip(images, spawn(rng, len(images)))
    ]
    serial_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    lockstep = BatchedHDTest(ensemble, "gauss", config=config).fuzz_outcomes(
        images, generators=spawn(rng, len(images))
    )
    lockstep_elapsed = time.perf_counter() - start

    equal = [_outcome_key(o) for o in serial] == [_outcome_key(o) for o in lockstep]
    rows = [
        ("serial/member", len(images) / serial_elapsed, serial_elapsed),
        ("lock-step", len(images) / lockstep_elapsed, lockstep_elapsed),
    ]
    return rows, equal


def _report(rows, k):
    baseline = rows[0][1]
    lines = [
        f"[ensemble-fuzzing] K={k} cross-model campaign (gauss):",
        f"{'schedule':14s} {'inputs/sec':>10s} {'elapsed':>9s} {'speedup':>8s}",
    ]
    for name, ips, elapsed in rows:
        lines.append(
            f"{name:14s} {ips:10.3f} {elapsed:8.1f}s {ips / baseline:7.2f}x"
        )
    return "\n".join(lines)


def _build_ensemble(model, train, k=K_MEMBERS, rng=SEED):
    return ModelEnsembleTarget.trained_like(
        model, k, train.images, train.labels, rng=rng
    )


def run_diversity_cost(model, train, holdout, fuzz_pool, *, k=3,
                       iter_times=10, rng=SEED):
    """Shared-codebook vs independent-codebook diversity, same K.

    Returns per-flavour ``holdout_agreement`` (fraction of held-out
    inputs every member labels identically — higher means more
    correlated members) and ``discrepancy_yield`` (fraction of fuzzed
    seeds on which an identical cross-model campaign surfaces a
    disagreement).
    """
    targets = {
        "shared": SharedCodebookEnsembleTarget.trained_shared(
            model, k, train.images, train.labels, rng=rng
        ),
        "independent": ModelEnsembleTarget.trained_like(
            model, k, train.images, train.labels, rng=rng
        ),
    }
    config = HDTestConfig(iter_times=iter_times)
    out = {}
    for name, target in targets.items():
        preds = target.predict(list(holdout))
        agreement = float(np.mean(np.all(preds == preds[0], axis=0)))
        outcomes = BatchedHDTest(
            target, "gauss", config=config, oracle=CrossModelOracle()
        ).fuzz_outcomes(list(fuzz_pool), generators=spawn(rng, len(fuzz_pool)))
        yield_rate = float(np.mean([o.success for o in outcomes]))
        out[name] = {
            "holdout_agreement": agreement,
            "discrepancy_yield": yield_rate,
        }
    return out


def _diversity_report(diversity, k) -> str:
    lines = [
        f"[codebook-diversity] K={k}, identical campaigns:",
        f"{'ensemble':14s} {'holdout agreement':>18s} {'discrepancy yield':>18s}",
    ]
    for name, row in diversity.items():
        lines.append(
            f"{name:14s} {row['holdout_agreement']:18.3f} "
            f"{row['discrepancy_yield']:18.3f}"
        )
    return "\n".join(lines)


def _record_diversity(diversity, k) -> None:
    from conftest import write_bench_record

    write_bench_record(
        "bench_ensemble_fuzzing",
        metrics={
            f"{name}_{metric}": value
            for name, row in diversity.items()
            for metric, value in row.items()
        },
        config={"diversity_k": k},
    )


def _check_diversity(diversity) -> None:
    for row in diversity.values():
        assert 0.0 <= row["holdout_agreement"] <= 1.0
        assert 0.0 <= row["discrepancy_yield"] <= 1.0
    # Bagged members share every codebook row, so they cannot be *more*
    # diverse than independently-seeded members on the same data; allow
    # slack for small holdouts rather than asserting strict order.
    assert (
        diversity["shared"]["holdout_agreement"]
        >= diversity["independent"]["holdout_agreement"] - 0.05
    )


def test_lockstep_never_behind_serial_member_loop(benchmark, paper_model,
                                                  digit_data, fuzz_images):
    """Lock-step K=5 fuzzing must hold parity with the serial loop."""
    from conftest import run_once

    train, _ = digit_data
    ensemble = _build_ensemble(paper_model, train)
    images = fuzz_images[:N_IMAGES]
    rows, equal = run_once(
        benchmark, lambda: run_lockstep_vs_serial(ensemble, images)
    )
    print("\n" + _report(rows, K_MEMBERS))
    assert equal, "schedules must produce identical outcomes"
    speedup = rows[1][1] / rows[0][1]
    assert speedup >= MIN_LOCKSTEP_SPEEDUP, (
        f"lock-step at {speedup:.2f}x the serial per-member loop is below "
        f"the {MIN_LOCKSTEP_SPEEDUP}x parity bar"
    )


def test_shared_codebook_diversity_cost(paper_model, digit_data, fuzz_images):
    """Measure (and record) what sharing a codebook costs in diversity."""
    train, _ = digit_data
    images = np.asarray(fuzz_images)
    diversity = run_diversity_cost(
        paper_model, train, images[:200], images[200:212], k=3, rng=SEED
    )
    print("\n" + _diversity_report(diversity, 3))
    _record_diversity(diversity, 3)
    _check_diversity(diversity)


def test_debugging_loop_resolves_heldout_disagreements(paper_model, digit_data,
                                                       fuzz_images):
    """Retraining on discrepancies must generalise to unseen disagreements."""
    train, _ = digit_data
    ensemble = _build_ensemble(paper_model, train, k=3)
    images = np.asarray(fuzz_images)
    fuzz_pool, holdout = list(images[:60]), list(images[60:240])
    report, _ = debug_ensemble(
        ensemble, fuzz_pool, holdout,
        config=HDTestConfig(iter_times=15), rng=SEED,
    )
    print(f"\n[ensemble-debugging] {report.summary()}")
    assert report.n_holdout_disagreements > 0
    assert report.resolved_rate >= MIN_RESOLVED_RATE, (
        f"debugging resolved only {report.resolved_rate:.2f} of held-out "
        f"disagreements (bar: {MIN_RESOLVED_RATE})"
    )


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke reading without plugins."""
    import argparse

    from repro.datasets import load_digits
    from repro.hdc import HDCClassifier, PixelEncoder

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny models + short loops (CI smoke)")
    args = parser.parse_args(argv)

    dimension = 2048 if args.quick else 10_000
    n_train = 400 if args.quick else 1500
    n_images = 4 if args.quick else N_IMAGES
    iter_times = 8 if args.quick else ITER_TIMES

    train, test = load_digits(n_train=n_train, n_test=240, seed=42)
    model = HDCClassifier(PixelEncoder(dimension=dimension, rng=42), 10).fit(
        train.images, train.labels
    )
    ensemble = _build_ensemble(model, train)
    images = test.images[:n_images].astype(np.float64)
    rows, equal = run_lockstep_vs_serial(ensemble, images, iter_times=iter_times)
    print(_report(rows, K_MEMBERS))
    assert equal, "schedules must produce identical outcomes"
    speedup = rows[1][1] / rows[0][1]
    print(f"[ensemble-fuzzing] lock-step {speedup:.2f}x the serial per-member "
          f"loop (parity bar: {MIN_LOCKSTEP_SPEEDUP}x)")
    assert speedup >= MIN_LOCKSTEP_SPEEDUP

    pool_images = test.images.astype(np.float64)
    diversity = run_diversity_cost(
        model, train, pool_images[:160], pool_images[160:168],
        k=3, iter_times=6, rng=SEED,
    )
    print(_diversity_report(diversity, 3))
    _record_diversity(diversity, 3)
    _check_diversity(diversity)

    debug_members = ModelEnsembleTarget.trained_like(
        model, 3, train.images, train.labels, rng=SEED
    )
    pool = test.images.astype(np.float64)
    report, _ = debug_ensemble(
        debug_members, list(pool[:40]), list(pool[40:160]),
        config=HDTestConfig(iter_times=8), rng=SEED,
    )
    print(f"[ensemble-debugging] held-out agreement "
          f"{report.agreement_before:.3f} -> {report.agreement_after:.3f}; "
          f"resolved {report.resolved_rate:.2f} of "
          f"{report.n_holdout_disagreements} held-out disagreements "
          f"(bar: {MIN_RESOLVED_RATE})")
    assert report.n_holdout_disagreements > 0
    assert report.resolved_rate >= MIN_RESOLVED_RATE
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
