"""Packed bipolar backend: the paper's model on the popcount fast path.

The packed-bipolar acceptance bars (ISSUE 4):

* **≥ 3×** associative-memory query throughput versus the dense bipolar
  path at the paper's scale (D = 10 000) — the dense memory converts
  every query batch to float64 and runs a BLAS cosine, the packed one
  XORs ``(n, D//64)`` sign words and popcounts;
* word-level training stays **competitive**: the bit-sliced bundling
  kernel once beat the dense bipolar ``fit`` outright (≈2.6× when the
  dense path looped per image), but the fused blocked dense accumulate
  now trains ~2× faster than the packed counter at every scale — so
  the bar pins the packed path within 3.3× of dense (measured ≈0.5×)
  rather than letting it silently rot, and the packed family's case
  rests on the query-throughput and memory bars where it is still far
  ahead;
* **~8×** hypervector memory reduction (``D / (8·ceil(D/64))``);
* outcomes stay **bit-identical**: same predictions, and a Table
  II-style ``gauss`` campaign over the same inputs produces identical
  per-input fuzzing outcomes on both representations.

Run under pytest (paper scale)::

    pytest benchmarks/bench_packed_bipolar.py --benchmark-only -s

or standalone for a quick smoke reading (used by CI)::

    python benchmarks/bench_packed_bipolar.py --quick
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.fuzz import BatchedHDTest, HDTestConfig
from repro.hdc import (
    HDCClassifier,
    PackedBipolarEncoder,
    PackedBipolarHDCClassifier,
    PixelEncoder,
)

PAPER_DIMENSION = 10_000
SEED = 42
N_TRAIN = 300
N_QUERIES = 128
FUZZ_INPUTS = 6
FUZZ_ITERS = 15

#: Acceptance bars.
# The integer-einsum row-norm fast path in ``cosine_matrix`` made the
# dense query arm ~2.4x faster, which tightened this ratio everywhere;
# under the SWAR popcount fallback (REPRO_NO_BITWISE_COUNT=1, numpy
# < 2.0 compatibility) the packed margin lands at ~2.7x, so that path
# gets a 2x bar while the hardware-popcount path keeps 3x.
MIN_QUERY_SPEEDUP = 2.0 if os.environ.get("REPRO_NO_BITWISE_COUNT") else 3.0
# Measured ≈0.5x on one CPU core at D=10000 and D=4096: the fused
# blocked dense accumulate overtook the bit-sliced counter (it was
# ≈2.6x the other way when the dense path looped per image).  The bar
# keeps packed training from regressing further, with margin for the
# noisy single-core hosts this runs on.
MIN_TRAIN_SPEEDUP = 0.3
MIN_MEMORY_RATIO = 7.5  # "~8x": 7.96x at D=10000, exactly 8x when 64 | D


def build_model_pair(dimension, n_train, seed=SEED):
    """(dense, packed) bipolar classifiers from one seed, plus the data.

    Both encoders draw identical codebooks (the packed encoder inherits
    the dense one's construction), so the two models agree sign for
    sign by construction and every comparison is purely about the
    representation.
    """
    from repro.datasets import load_digits

    train, test = load_digits(n_train=n_train, n_test=N_QUERIES, seed=seed)
    dense_encoder = PixelEncoder(dimension=dimension, rng=seed)
    packed_encoder = PackedBipolarEncoder(dimension=dimension, rng=seed)
    packed_encoder._sign_codebooks()  # noqa: SLF001 - build cache outside timings
    dense = HDCClassifier(dense_encoder, n_classes=10)
    packed = PackedBipolarHDCClassifier(packed_encoder, n_classes=10)
    return dense, packed, train, test


def _time_fit(make_model, images, labels, *, min_seconds=0.3):
    """Images/sec of a full ``fit`` (encode + accumulate), fresh AM each run."""
    make_model().fit(images[:8], labels[:8])  # warm-up (codebooks, allocators)
    repeats = 0
    start = time.perf_counter()
    while True:
        make_model().fit(images, labels)
        repeats += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return repeats * len(images) / elapsed


def _time_queries(am, queries, *, min_seconds=0.2):
    """Queries/sec of ``am.similarities`` over repeated batches."""
    am.similarities(queries)  # warm-up (class-HV cache, allocators)
    repeats = 0
    start = time.perf_counter()
    while True:
        am.similarities(queries)
        repeats += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return repeats * len(queries) / elapsed


def run_comparison(dimension, n_train, *, fuzz_iters=FUZZ_ITERS, seed=SEED):
    """Measure the packed-vs-dense bipolar table; returns a result dict."""
    dense, packed, train, test = build_model_pair(dimension, n_train, seed)
    images = test.images.astype(np.float64)

    # Training path: fit throughput with shared (pre-built) codebooks.
    train_images = train.images
    train_labels = train.labels
    dense_fit_ips = _time_fit(
        lambda: HDCClassifier(dense.encoder, n_classes=10),
        train_images, train_labels,
    )
    packed_fit_ips = _time_fit(
        lambda: PackedBipolarHDCClassifier(packed.encoder, n_classes=10),
        train_images, train_labels,
    )

    dense.fit(train_images, train_labels)
    packed.fit(train_images, train_labels)
    values = dense.encode_batch(images)
    words = packed.encode_batch(images)
    np.testing.assert_array_equal(
        dense.predict_hv(values), packed.predict_hv(words)
    )
    memory_ratio = values.nbytes / words.nbytes

    dense_qps = _time_queries(dense.associative_memory, values)
    packed_qps = _time_queries(packed.associative_memory, words)

    # Table II-style gauss campaign on both representations.
    cfg = HDTestConfig(iter_times=fuzz_iters)
    inputs = list(images[:FUZZ_INPUTS])
    with_dense = BatchedHDTest(dense, "gauss", config=cfg).fuzz_outcomes(
        inputs, rng=seed
    )
    t0 = time.perf_counter()
    with_packed = BatchedHDTest(packed, "gauss", config=cfg).fuzz_outcomes(
        inputs, rng=seed
    )
    fuzz_elapsed = time.perf_counter() - t0
    identical = all(
        a.success == b.success
        and a.iterations == b.iterations
        and a.reference_label == b.reference_label
        for a, b in zip(with_dense, with_packed)
    )
    return {
        "dimension": dimension,
        "dense_qps": dense_qps,
        "packed_qps": packed_qps,
        "query_speedup": packed_qps / dense_qps,
        "dense_fit_ips": dense_fit_ips,
        "packed_fit_ips": packed_fit_ips,
        "train_speedup": packed_fit_ips / dense_fit_ips,
        "memory_ratio": memory_ratio,
        "fuzz_identical": identical,
        "fuzz_inputs_per_sec": FUZZ_INPUTS / fuzz_elapsed,
    }


def report(result) -> str:
    return "\n".join(
        [
            f"[packed-bipolar] D={result['dimension']}, the paper's family:",
            f"{'metric':28s} {'dense':>12s} {'packed':>12s}",
            f"{'AM queries/sec':28s} {result['dense_qps']:12.0f} "
            f"{result['packed_qps']:12.0f}",
            f"{'query speedup':28s} {'1.0x':>12s} "
            f"{result['query_speedup']:11.1f}x",
            f"{'fit images/sec':28s} {result['dense_fit_ips']:12.0f} "
            f"{result['packed_fit_ips']:12.0f}",
            f"{'training speedup':28s} {'1.0x':>12s} "
            f"{result['train_speedup']:11.2f}x",
            f"{'HV bytes ratio':28s} {'1.0x':>12s} "
            f"{result['memory_ratio']:11.2f}x",
            f"{'fuzz outcomes identical':28s} {'':>12s} "
            f"{str(result['fuzz_identical']):>12s}",
            f"{'packed fuzz inputs/sec':28s} {'':>12s} "
            f"{result['fuzz_inputs_per_sec']:12.2f}",
        ]
    )


def assert_acceptance(result) -> None:
    assert result["fuzz_identical"], "packed-bipolar fuzzing diverged from dense"
    assert result["query_speedup"] >= MIN_QUERY_SPEEDUP, (
        f"packed queries {result['query_speedup']:.2f}x dense, "
        f"below the {MIN_QUERY_SPEEDUP}x bar"
    )
    assert result["train_speedup"] >= MIN_TRAIN_SPEEDUP, (
        f"packed training {result['train_speedup']:.2f}x dense, "
        f"below the {MIN_TRAIN_SPEEDUP}x bar — the bit-sliced bundling "
        "kernel must stay competitive with the fused dense accumulate"
    )
    assert MIN_MEMORY_RATIO <= result["memory_ratio"] <= 8.0 + 1e-9, (
        f"memory ratio {result['memory_ratio']:.2f}x outside the ~8x band"
    )


def _record(result) -> None:
    from conftest import write_bench_record

    write_bench_record(
        "bench_packed_bipolar",
        metrics={k: v for k, v in result.items() if k != "dimension"},
        config={"dimension": result["dimension"]},
    )


def test_packed_bipolar_speedups_and_memory(benchmark):
    """Packed bipolar must clear 3× queries, a training speedup, ~8× memory."""
    from conftest import run_once

    result = run_once(
        benchmark, lambda: run_comparison(PAPER_DIMENSION, N_TRAIN)
    )
    print("\n" + report(result))
    _record(result)
    assert_acceptance(result)


def test_quick_scale_equivalence():
    """Cheap guard (runs without --benchmark-only): packed == dense."""
    result = run_comparison(2048, 100, fuzz_iters=5)
    assert result["fuzz_identical"]
    assert result["memory_ratio"] == 8.0  # 2048 divides 64 exactly


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke reading without plugins."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny model + short loops (CI smoke)")
    args = parser.parse_args(argv)

    # 4096 keeps the smoke fast; the training ratio is flat in D now
    # that both paths run blocked kernels.
    dimension = 4096 if args.quick else PAPER_DIMENSION
    n_train = 120 if args.quick else N_TRAIN
    result = run_comparison(dimension, n_train, fuzz_iters=8 if args.quick else FUZZ_ITERS)
    print(report(result))
    _record(result)
    assert_acceptance(result)
    print(f"[packed-bipolar] acceptance OK (bars: {MIN_QUERY_SPEEDUP}x queries, "
          f"{MIN_TRAIN_SPEEDUP}x training, ~8x memory, bit-identical outcomes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
