"""Figs. 4–6: sample adversarial images under gauss, rand, and shift.

The paper shows, per strategy, a row of original images, the mutated
pixels, and the generated adversarials.  This bench regenerates those
galleries (3 samples per strategy), persists every panel to
``benchmarks/artifacts/``, and checks each strategy's qualitative
signature:

* gauss (Fig. 4): perturbation spread over most of the image;
* rand (Fig. 5): only a few isolated pixels mutated;
* shift (Fig. 6): pixel *values* preserved, locations moved — the
  paper shows no mutated-pixel panel for shift, and neither do we.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from conftest import run_once

from repro.analysis import adversarial_triptych, diff_mask, save_pgm
from repro.fuzz import HDTest, HDTestConfig

ARTIFACTS = Path(__file__).parent / "artifacts"
N_SAMPLES = 3


def _collect(model, images, strategy, n, rng):
    fuzzer = HDTest(model, strategy, config=HDTestConfig(iter_times=60), rng=rng)
    examples = []
    for image in images:
        outcome = fuzzer.fuzz_one(image)
        if outcome.success:
            examples.append(outcome.example)
        if len(examples) == n:
            break
    return examples


def _persist(examples, tag):
    ARTIFACTS.mkdir(exist_ok=True)
    for i, ex in enumerate(examples):
        save_pgm(ARTIFACTS / f"{tag}_{i}_original.pgm", ex.original)
        save_pgm(ARTIFACTS / f"{tag}_{i}_adversarial.pgm", ex.adversarial)
        if tag != "fig6_shift":
            save_pgm(
                ARTIFACTS / f"{tag}_{i}_mutated_pixels.pgm",
                diff_mask(ex.original, ex.adversarial),
            )


def test_fig4_gauss_samples(benchmark, paper_model, fuzz_images):
    examples = run_once(
        benchmark, lambda: _collect(paper_model, fuzz_images, "gauss", N_SAMPLES, 4)
    )
    assert len(examples) == N_SAMPLES
    print(f"\n[Fig. 4] gauss sample:\n{adversarial_triptych(examples[0])}")
    for ex in examples:
        # Holographic mutation: most of the 784 pixels carry perturbation.
        assert ex.metrics["l0"] > 400
    _persist(examples, "fig4_gauss")


def test_fig5_rand_samples(benchmark, paper_model, fuzz_images):
    examples = run_once(
        benchmark, lambda: _collect(paper_model, fuzz_images, "rand", N_SAMPLES, 5)
    )
    assert len(examples) == N_SAMPLES
    print(f"\n[Fig. 5] rand sample:\n{adversarial_triptych(examples[0])}")
    for ex in examples:
        # Sparse mutation: well under half the image touched (gauss
        # blankets >400 pixels), and the budgeted distance stays tiny.
        assert ex.metrics["l0"] < 350
        assert ex.metrics["l2"] < 1.0
    _persist(examples, "fig5_rand")


def test_fig6_shift_samples(benchmark, paper_model, fuzz_images):
    examples = run_once(
        benchmark, lambda: _collect(paper_model, fuzz_images, "shift", N_SAMPLES, 6)
    )
    assert len(examples) == N_SAMPLES
    print(f"\n[Fig. 6] shift sample:\n{adversarial_triptych(examples[0])}")
    for ex in examples:
        # Shift invents no new grey values (modulo background fill).
        original_values = set(np.round(np.asarray(ex.original).ravel(), 6)) | {0.0}
        adv_values = set(np.round(np.asarray(ex.adversarial).ravel(), 6))
        assert adv_values.issubset(original_values)
    _persist(examples, "fig6_shift")
