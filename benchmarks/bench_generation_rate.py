"""Abstract / Sec. V-B throughput: adversarial images per minute.

Paper: "On average, HDTest can generate around 400 adversarial inputs
within one minute running on a commodity computer" (AMD Ryzen 5 3600).
This bench measures the sustained generation rate on this machine with
the same D = 10 000 model and extrapolates to the paper's two reporting
conventions (images/minute and seconds per 1000 images).
"""

from __future__ import annotations

from conftest import run_once

from repro.fuzz import generate_adversarial_set
from repro.metrics.timing import per_minute, per_thousand

PAPER_RATE_PER_MINUTE = 400.0
N_GENERATE = 80


def test_generation_rate(benchmark, paper_model, fuzz_images):
    def generate():
        return generate_adversarial_set(
            paper_model, fuzz_images, N_GENERATE, strategy="gauss", rng=23
        )

    examples, elapsed = run_once(benchmark, generate)
    rate = per_minute(elapsed, len(examples))
    print(f"\n[throughput] {len(examples)} adversarials in {elapsed:.1f}s "
          f"→ {rate:.0f}/minute (paper ≈{PAPER_RATE_PER_MINUTE:.0f}/minute), "
          f"{per_thousand(elapsed, len(examples)):.0f}s per 1K "
          f"(paper 100–228s)")
    assert len(examples) == N_GENERATE
    # Same order of magnitude as the paper's commodity-hardware rate.
    assert rate > PAPER_RATE_PER_MINUTE / 10
