"""Ablation: HDTest across HDC model structures (Sec. V-E's claim).

"HDTest can be naturally extended to other HDC model structures
because it considers a general greybox assumption with only HV distance
information."  This bench runs the identical fuzzer against two
structurally different image models — the paper's position⊛value
encoder and the permutation-based encoder — and checks both campaigns
behave (succeed, respect budgets) without any fuzzer changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import SEED, run_once

from repro.fuzz import HDTest, HDTestConfig
from repro.hdc import HDCClassifier, PermutationImageEncoder, PixelEncoder

DIMENSION = 4096
N_TRAIN = 800
N_IMAGES = 8


def _build_and_fuzz(encoder, digit_data, rng):
    train, test = digit_data
    model = HDCClassifier(encoder, n_classes=10).fit(
        train.images[:N_TRAIN], train.labels[:N_TRAIN]
    )
    accuracy = model.score(test.images, test.labels)
    result = HDTest(
        model, "gauss", config=HDTestConfig(iter_times=60), rng=rng
    ).fuzz(test.images[:N_IMAGES].astype(np.float64))
    return accuracy, result


def test_pixel_encoder_model(benchmark, digit_data):
    accuracy, result = run_once(
        benchmark,
        lambda: _build_and_fuzz(
            PixelEncoder(dimension=DIMENSION, rng=SEED), digit_data, 71
        ),
    )
    print(f"\n[encoder=position⊛value] accuracy={accuracy:.3f} "
          f"fuzz success={result.success_rate:.2f} iters={result.avg_iterations:.2f}")
    assert accuracy > 0.6
    assert result.success_rate > 0.5


def test_permutation_encoder_model(benchmark, digit_data):
    accuracy, result = run_once(
        benchmark,
        lambda: _build_and_fuzz(
            PermutationImageEncoder(dimension=DIMENSION, rng=SEED), digit_data, 72
        ),
    )
    print(f"\n[encoder=permutation] accuracy={accuracy:.3f} "
          f"fuzz success={result.success_rate:.2f} iters={result.avg_iterations:.2f}")
    assert accuracy > 0.5
    assert result.success_rate > 0.5
