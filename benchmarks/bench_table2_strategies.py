"""Table II: L1/L2 distance, iterations, and runtime per mutation strategy.

Reproduces the paper's central comparison.  Absolute numbers depend on
hardware and on the substituted dataset (DESIGN.md §2), so the asserts
target the table's *shape* — the claims Sec. V-B actually makes:

* ``rand`` generates the least visible adversarials (smallest L1/L2)
  but needs roughly an order of magnitude more iterations than
  ``gauss``;
* ``gauss`` needs the fewest iterations, at ≈5× rand's distance;
* ``rand`` is the slowest per 1000 generated images, ``shift`` the
  fastest;
* ``row & col rand`` sits between the noise strategies and is dominated
  by gauss.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import run_once

from repro.analysis import table2
from repro.fuzz import HDTestConfig, compare_strategies

N_IMAGES = 25
STRATEGIES = ("gauss", "rand", "row_col_rand", "shift")


@pytest.fixture(scope="module")
def table2_results(paper_model, fuzz_images):
    return compare_strategies(
        paper_model,
        fuzz_images[:N_IMAGES],
        STRATEGIES,
        config=HDTestConfig(iter_times=60),
        rng=7,
    )


def test_table2_full_campaign(benchmark, paper_model, fuzz_images):
    """Time the whole four-strategy campaign (the Table II experiment)."""

    def campaign():
        return compare_strategies(
            paper_model,
            fuzz_images[:8],
            STRATEGIES,
            config=HDTestConfig(iter_times=60),
            rng=11,
        )

    results = run_once(benchmark, campaign)
    assert set(results) == set(STRATEGIES)


def test_table2_shape_distances(benchmark, table2_results):
    results = run_once(benchmark, lambda: table2_results)
    print("\n" + table2(results))
    rand, gauss = results["rand"], results["gauss"]
    rowcol = results["row_col_rand"]
    # rand produces the least visible perturbations (paper: 0.58 vs 2.91 L1).
    assert rand.avg_l1 < gauss.avg_l1
    assert rand.avg_l2 < gauss.avg_l2
    # row & col rand perturbs more than rand (paper: 9.45 vs 0.58 L1).
    assert rowcol.avg_l1 > rand.avg_l1


def test_table2_shape_iterations(benchmark, table2_results):
    results = run_once(benchmark, lambda: table2_results)
    gauss, rand = results["gauss"], results["rand"]
    # gauss needs the fewest iterations (paper: 1.46); rand the most (12.18).
    assert gauss.avg_iterations == min(r.avg_iterations for r in results.values())
    assert rand.avg_iterations > 4 * gauss.avg_iterations


def test_table2_shape_runtime(benchmark, table2_results):
    results = run_once(benchmark, lambda: table2_results)
    per_1k = {name: r.time_per_1k for name, r in results.items()}
    print("\n[Table II] seconds per 1K generated images: "
          + ", ".join(f"{k}={v:.0f}" for k, v in per_1k.items()))
    # rand is the slowest strategy per generated image (paper: 228 s).
    assert per_1k["rand"] == max(per_1k.values())
    # shift is the fastest (paper: 88 s) — it only moves pixel indices.
    assert per_1k["shift"] == min(per_1k.values())


def test_table2_success_rates(benchmark, table2_results):
    results = run_once(benchmark, lambda: table2_results)
    # The paper generates thousands of adversarials with every strategy;
    # each strategy must succeed on a clear majority of inputs here.
    for name, result in results.items():
        assert result.success_rate > 0.5, f"{name} only {result.success_rate:.2f}"
