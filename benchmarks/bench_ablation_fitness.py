"""Ablation: the paper's reference-distance fitness vs margin fitness.

The paper guides with ``1 − Cosim(AM[y], HDC(seed))`` — distance from
the reference class only.  :class:`~repro.fuzz.fitness.MarginFitness`
(an extension) instead rewards closing the gap to the *nearest other*
class, a strictly sharper signal.  This bench compares iterations per
adversarial under the long-search ``rand`` strategy.
"""

from __future__ import annotations

import pytest

from conftest import run_once

from repro.fuzz import DistanceGuidedFitness, HDTest, HDTestConfig, MarginFitness

N_IMAGES = 12


@pytest.fixture(scope="module")
def fitness_results(paper_model, fuzz_images):
    results = {}
    config = HDTestConfig(iter_times=60)
    results["distance"] = HDTest(
        paper_model, "rand", config=config, fitness=DistanceGuidedFitness(), rng=53
    ).fuzz(fuzz_images[:N_IMAGES])

    # MarginFitness needs the reference label per input, so run per-input.
    import numpy as np

    from repro.fuzz.results import CampaignResult

    outcomes = []
    elapsed = 0.0
    class_hvs = paper_model.associative_memory.class_hvs
    for image in fuzz_images[:N_IMAGES]:
        ref = paper_model.predict_one(image)
        fuzzer = HDTest(
            paper_model,
            "rand",
            config=config,
            fitness=MarginFitness(class_hvs, ref),
            rng=53,
        )
        from repro.metrics.timing import Stopwatch

        with Stopwatch() as sw:
            outcomes.append(fuzzer.fuzz_one(image))
        elapsed += sw.elapsed
    results["margin"] = CampaignResult("rand", outcomes, elapsed)
    return results


def test_distance_guided_fitness(benchmark, fitness_results):
    result = run_once(benchmark, lambda: fitness_results["distance"])
    print(f"\n[fitness=distance] iters={result.avg_iterations:.1f} "
          f"success={result.success_rate:.2f}")
    assert result.success_rate > 0.5


def test_margin_fitness(benchmark, fitness_results):
    result = run_once(benchmark, lambda: fitness_results["margin"])
    print(f"\n[fitness=margin] iters={result.avg_iterations:.1f} "
          f"success={result.success_rate:.2f}")
    assert result.success_rate > 0.5


def test_margin_fitness_at_least_as_fast(benchmark, fitness_results):
    pair = run_once(benchmark, lambda: fitness_results)
    print(f"\n[fitness ablation] distance {pair['distance'].avg_iterations:.1f} "
          f"vs margin {pair['margin'].avg_iterations:.1f} iterations")
    # The sharper signal should not be slower by much; allow noise.
    assert pair["margin"].avg_iterations <= pair["distance"].avg_iterations * 1.5
