"""Adaptive campaigns vs fixed strategies: discrepancies per encode.

The adaptive driver (``repro.fuzz.adaptive``) claims two compounding
wins over the fixed campaigns, both measured here at paper scale
(D = 10 000) on the yield metric the bandit optimises —
discrepancies per encode:

* vs the *best fixed strategy*: the evolving corpus re-enters retired
  adversarials as boundary-hugging seeds whose mutants flip almost
  immediately, beating even the arm an oracle would have picked
  (bar: ``MIN_VS_BEST_FIXED``);
* vs the *uniform mix* a strategy-agnostic user runs: Thompson
  sampling demotes encode-hungry arms (``rand``) and yield-less arms
  (``shift``) after a one-input probe each, so almost the whole budget
  lands on the productive arm (bar: ``MIN_VS_UNIFORM``).

The regime is the paper's budgeted attack setting
(``ImageConstraint(max_l2 = L2_BUDGET)``): under a tight budget the
strategies separate sharply — gauss partially succeeds, rand pays two
orders of magnitude more encodes per discrepancy, shift never gets a
child inside the budget — which is exactly where scheduling matters.
Unconstrained, this model retires nearly every input in about one
iteration for every arm and no scheduler can beat the floor.

Every variant runs through ``run_adaptive_campaign`` itself (fixed
arm = single strategy + uniform schedule + static corpus), so all
five campaigns share one accounting: engine encodes + seed encodes +
minimisation probes.

Run:    pytest benchmarks/bench_adaptive_campaign.py --benchmark-only -s
Smoke:  python benchmarks/bench_adaptive_campaign.py --quick
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import run_once, write_bench_record

from repro.fuzz import HDTestConfig, ImageConstraint, run_adaptive_campaign

ARMS = ("gauss", "rand", "shift")
N_POOL = 32
N_TARGET = 200
ITER_TIMES = 30
L2_BUDGET = 0.25
BLOCK_SIZE = 16
SEED = 7

#: Adaptive must beat the best fixed strategy by this factor …
MIN_VS_BEST_FIXED = 1.2
#: … and the uniform strategy mix by this one (paper-scale bars).
MIN_VS_UNIFORM = 1.5


def _campaign(model, images, labels, *, arms, schedule, evolve, n_target,
              iter_times, budget_factor=20):
    return run_adaptive_campaign(
        model,
        images,
        n_target,
        strategies=arms,
        schedule=schedule,
        evolve_corpus=evolve,
        minimize=evolve,
        true_labels=labels,
        config=HDTestConfig(iter_times=iter_times),
        constraint=ImageConstraint(max_l2=L2_BUDGET),
        block_size=BLOCK_SIZE,
        max_attempts_factor=budget_factor,
        rng=SEED,
        executor="batched",
        strict=False,
    )


def run_matrix(model, images, labels, *, n_target=N_TARGET,
               iter_times=ITER_TIMES):
    """All five campaigns: fixed per arm, uniform mix, adaptive."""
    results = {}
    for arm in ARMS:
        results[f"fixed:{arm}"] = _campaign(
            model, images, labels, arms=(arm,), schedule="uniform",
            evolve=False, n_target=n_target, iter_times=iter_times,
        )
    results["uniform"] = _campaign(
        model, images, labels, arms=ARMS, schedule="uniform",
        evolve=False, n_target=n_target, iter_times=iter_times,
    )
    results["adaptive"] = _campaign(
        model, images, labels, arms=ARMS, schedule="thompson",
        evolve=True, n_target=n_target, iter_times=iter_times,
    )
    return results


def _dpe(result) -> float:
    value = result.discrepancies_per_encode
    return 0.0 if value != value else value  # NaN -> no yield at all


def _report(results, *, dimension=10_000, n_target=N_TARGET,
            iter_times=ITER_TIMES) -> str:
    lines = [
        f"[adaptive-campaign] D={dimension} pool={N_POOL} target={n_target} "
        f"iter_times={iter_times} max_l2={L2_BUDGET}",
        f"  {'campaign':14s} {'found':>6s} {'attempts':>9s} "
        f"{'encodes':>9s} {'disc/encode':>12s}",
    ]
    for name, r in results.items():
        lines.append(
            f"  {name:14s} {r.n_found:6d} {r.attempts:9d} "
            f"{r.encodes:9d} {_dpe(r):12.5f}"
        )
    return "\n".join(lines)


def _record(results) -> None:
    adaptive = results["adaptive"]
    best_fixed = max(_dpe(results[f"fixed:{arm}"]) for arm in ARMS)
    write_bench_record(
        "bench_adaptive_campaign",
        metrics={
            **{f"dpe_{k.replace(':', '_')}": _dpe(r) for k, r in results.items()},
            "adaptive_vs_best_fixed": _dpe(adaptive) / best_fixed,
            "adaptive_vs_uniform": _dpe(adaptive) / _dpe(results["uniform"]),
            "adaptive_found": adaptive.n_found,
            "adaptive_encodes": adaptive.encodes,
            "adaptive_best_arm": adaptive.best_arm(),
            "adaptive_allocation": adaptive.allocation,
            "adaptive_bandit": adaptive.bandit,
            "adaptive_corpus": adaptive.corpus,
        },
        config={
            "arms": list(ARMS),
            "n_pool": N_POOL,
            "n_target": N_TARGET,
            "iter_times": ITER_TIMES,
            "max_l2": L2_BUDGET,
            "block_size": BLOCK_SIZE,
            "seed": SEED,
            "min_vs_best_fixed": MIN_VS_BEST_FIXED,
            "min_vs_uniform": MIN_VS_UNIFORM,
        },
    )


@pytest.fixture(scope="module")
def matrix(paper_model, fuzz_images, digit_data):
    _, test = digit_data
    images = [fuzz_images[i] for i in range(N_POOL)]
    labels = [int(test.labels[i]) for i in range(N_POOL)]
    results = run_matrix(paper_model, images, labels)
    print("\n" + _report(results))
    _record(results)
    return results


def test_adaptive_beats_best_fixed_strategy(benchmark, matrix):
    results = run_once(benchmark, lambda: matrix)
    best_fixed = max(_dpe(results[f"fixed:{arm}"]) for arm in ARMS)
    ratio = _dpe(results["adaptive"]) / best_fixed
    print(f"\n[adaptive-campaign] adaptive/best-fixed = {ratio:.2f}x "
          f"(bar: {MIN_VS_BEST_FIXED}x)")
    assert ratio >= MIN_VS_BEST_FIXED


def test_adaptive_beats_uniform_mix(benchmark, matrix):
    results = run_once(benchmark, lambda: matrix)
    ratio = _dpe(results["adaptive"]) / _dpe(results["uniform"])
    print(f"\n[adaptive-campaign] adaptive/uniform-mix = {ratio:.2f}x "
          f"(bar: {MIN_VS_UNIFORM}x)")
    assert ratio >= MIN_VS_UNIFORM


def test_bandit_demotes_hopeless_and_expensive_arms(benchmark, matrix):
    results = run_once(benchmark, lambda: matrix)
    adaptive = matrix["adaptive"]
    scheduled = {arm: 0 for arm in ARMS}
    for wave in adaptive.allocation:
        for arm, n in wave["scheduled"].items():
            scheduled[arm] += n
    # The productive arm must dominate the allocation…
    assert adaptive.best_arm() == "gauss"
    assert scheduled["gauss"] > 2 * (scheduled["rand"] + scheduled["shift"])
    # …and the encode-hungry arm must be starved after its probe.
    assert scheduled["rand"] <= 2 * BLOCK_SIZE
    assert results is matrix


def test_evolving_corpus_reenters_boundary_seeds(benchmark, matrix):
    results = run_once(benchmark, lambda: matrix)
    corpus = results["adaptive"].corpus
    assert corpus["adversarial"] >= N_TARGET // 2
    assert corpus["near_miss"] > 0
    # Re-entered boundary seeds retire almost immediately.
    iterations = [e.iterations for e in results["adaptive"].examples]
    assert float(np.mean(iterations)) < 3


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke without plugins."""
    import argparse

    from repro.datasets import load_digits
    from repro.hdc import HDCClassifier, PixelEncoder

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny model + short campaigns (CI smoke)")
    args = parser.parse_args(argv)

    dimension = 2048 if args.quick else 10_000
    n_train = 400 if args.quick else 1500
    n_target = 40 if args.quick else N_TARGET
    iter_times = 10 if args.quick else ITER_TIMES

    train, test = load_digits(n_train=n_train, n_test=300, seed=42)
    model = HDCClassifier(PixelEncoder(dimension=dimension, rng=42), 10).fit(
        train.images, train.labels
    )
    images = [test.images[i].astype(np.float64) for i in range(N_POOL)]
    labels = [int(test.labels[i]) for i in range(N_POOL)]
    results = run_matrix(model, images, labels, n_target=n_target,
                         iter_times=iter_times)
    print(_report(results, dimension=dimension, n_target=n_target,
                  iter_times=iter_times))
    _record(results)
    best_fixed = max(_dpe(results[f"fixed:{arm}"]) for arm in ARMS)
    vs_fixed = _dpe(results["adaptive"]) / best_fixed
    vs_uniform = _dpe(results["adaptive"]) / _dpe(results["uniform"])
    # The quick model is weak enough that fixed gauss already sits at
    # the physical floor (~1 iteration per find), leaving the corpus no
    # headroom, and the probes amortise over far fewer finds — so the
    # smoke pins a sanity floor and the real bars are asserted at paper
    # scale (pytest leg), where the budgeted regime separates the arms.
    fixed_bar = 0.5 if args.quick else MIN_VS_BEST_FIXED
    uniform_bar = 1.2 if args.quick else MIN_VS_UNIFORM
    print(f"[adaptive-campaign] adaptive/best-fixed {vs_fixed:.2f}x "
          f"(smoke bar {fixed_bar}x; {MIN_VS_BEST_FIXED}x at paper scale); "
          f"adaptive/uniform {vs_uniform:.2f}x "
          f"(smoke bar {uniform_bar}x; {MIN_VS_UNIFORM}x at paper scale)")
    assert vs_fixed >= fixed_bar
    assert vs_uniform >= uniform_bar
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
