"""Shared-codebook ensembles + rematerialized codebooks (ISSUE 6 bars).

The encode-once hot path has three acceptance bars:

* **≥ 2×** campaign throughput for a K = 5
  :class:`~repro.fuzz.targets.SharedCodebookEnsembleTarget` versus the
  per-member-encode lock-step path
  (:class:`~repro.fuzz.targets.ModelEnsembleTarget`) on an encode-bound
  configuration — the shared target encodes each child block once and
  queries K associative memories, the independent target encodes K
  times;
* **≥ 50×** smaller retained encoder state with rematerialized
  codebooks at the paper's D = 10 000 — a
  :class:`~repro.hdc.item_memory.RematerializedItemMemory` keeps a
  64-bit PRF seed where the materialized codebook keeps
  ``(rows, D)`` int8 arrays (the saved ``.npz`` shrinks the same way);
* campaign outcomes **bit-identical** between rematerialized and
  materialized codebooks under every schedule — sequential per-input
  ``fuzz_one`` == :class:`~repro.fuzz.executor.BatchedExecutor` ==
  :class:`~repro.fuzz.executor.ProcessExecutor`.

Run under pytest (paper scale)::

    pytest benchmarks/bench_shared_codebook.py --benchmark-only -s

or standalone for a quick smoke reading (used by CI)::

    python benchmarks/bench_shared_codebook.py --quick
"""

from __future__ import annotations

import time

import numpy as np

from repro.fuzz import BatchedExecutor, BatchedHDTest, HDTest, HDTestConfig, ProcessExecutor
from repro.fuzz.oracle import CrossModelOracle
from repro.fuzz.targets import ModelEnsembleTarget, SharedCodebookEnsembleTarget
from repro.hdc import HDCClassifier, PixelEncoder
from repro.hdc.item_memory import ItemMemory
from repro.utils.rng import spawn

PAPER_DIMENSION = 10_000
SEED = 42
K_MEMBERS = 5
N_TRAIN = 300
FUZZ_INPUTS = 6
FUZZ_ITERS = 12

#: Acceptance bars.
MIN_SHARED_SPEEDUP = 2.0
MIN_STATE_RATIO = 50.0


def state_nbytes(obj) -> int:
    """Retained bytes of *obj*'s reachable numpy state.

    Recursively walks ``__dict__``/containers counting ``ndarray``
    buffers once each; a rematerialized codebook contributes nothing
    here beyond its Python scalars, which is the point being measured.
    """
    seen: set[int] = set()

    def walk(node) -> int:
        if id(node) in seen:
            return 0
        seen.add(id(node))
        if isinstance(node, np.ndarray):
            return node.nbytes
        if isinstance(node, (list, tuple)):
            return sum(walk(item) for item in node)
        if isinstance(node, dict):
            return sum(walk(item) for item in node.values())
        if hasattr(node, "__dict__"):
            return sum(walk(item) for item in vars(node).values())
        return 0

    return walk(obj)


def build_shared_pair(dimension, n_train, *, k=K_MEMBERS, seed=SEED):
    """(remat ensemble, materialized twin ensemble, images) for identity runs.

    The materialized twin's encoder holds the *same rows* as the
    rematerialized one (``materialize()`` of the same PRF codebooks),
    and both ensembles train identically, so any outcome difference is
    a hot-path bug, not statistical noise.
    """
    from repro.datasets import load_digits

    train, test = load_digits(n_train=n_train, n_test=64, seed=seed)
    remat_encoder = PixelEncoder(dimension=dimension, rng=seed, codebook="rematerialized")
    mat_encoder = PixelEncoder(
        dimension=dimension,
        position_memory=remat_encoder.position_memory.materialize(),
        value_memory=remat_encoder.value_memory.materialize(),
    )
    ensembles = []
    for encoder in (remat_encoder, mat_encoder):
        base = HDCClassifier(encoder, n_classes=10).fit(train.images, train.labels)
        ensembles.append(
            SharedCodebookEnsembleTarget.trained_shared(
                base, k, train.images, train.labels, rng=seed + 1
            )
        )
    return ensembles[0], ensembles[1], test.images.astype(np.float64)


class _NeverOracle(CrossModelOracle):
    """Timing-only oracle: no input ever succeeds.

    Ensembles trained differently succeed after different iteration
    counts, which would turn a throughput comparison into a comparison
    of early-exit luck; with this oracle every campaign does exactly
    ``iter_times`` iterations of encode + K queries per input.
    """

    def reference_discrepancy(self, reference_votes: np.ndarray) -> bool:
        return False

    def discrepancies_ensemble(self, reference_votes, query_labels):
        return np.zeros(np.asarray(query_labels).shape[-1], dtype=bool)


def _campaign_seconds(target, inputs, cfg, *, seed=SEED, repeats=2):
    """Best-of-*repeats* wall-clock of an encode-bound lock-step campaign.

    Delta encoding is disabled (``_delta_encoder`` stubbed to ``None``)
    so every child block goes through the full encode path — the
    configuration the shared-encode bar is defined on; with delta
    encoding both targets do O(changed pixels) work and the gap narrows.
    The never-firing oracle pins the per-input work to ``iter_times``
    iterations for both targets.
    """
    best = float("inf")
    for _ in range(repeats):
        engine = BatchedHDTest(target, "gauss", config=cfg, oracle=_NeverOracle())
        engine._delta_encoder = lambda: None  # noqa: SLF001 - force scratch encode
        start = time.perf_counter()
        engine.fuzz_outcomes(inputs, generators=spawn(seed, len(inputs)))
        best = min(best, time.perf_counter() - start)
    return best


def _outcome_key(outcomes):
    return [(o.success, o.iterations, o.reference_label) for o in outcomes]


def _sequential_outcomes(target, inputs, cfg, *, seed):
    """Per-input ``fuzz_one`` under the executors' spawned-generator discipline."""
    engine = HDTest(target, "gauss", config=cfg, oracle=CrossModelOracle())
    return [
        engine.fuzz_one(inp, rng=gen)
        for inp, gen in zip(inputs, spawn(seed, len(inputs)))
    ]


def run_comparison(dimension, n_train, *, fuzz_iters=FUZZ_ITERS, seed=SEED,
                   timing_repeats=2):
    """Measure every ISSUE 6 bar at *dimension*; returns a result dict."""
    import os
    import tempfile

    remat, materialized, images = build_shared_pair(dimension, n_train, seed=seed)
    cfg = HDTestConfig(iter_times=fuzz_iters)
    inputs = list(images[:FUZZ_INPUTS])

    # -- bar 1: shared-encode speedup over per-member encodes -------------
    independent = ModelEnsembleTarget.trained_like(
        materialized.primary,
        K_MEMBERS,
        images[:n_train] if len(images) >= n_train else images,
        materialized.primary.predict(images[:n_train] if len(images) >= n_train else images),
        rng=seed + 2,
    )
    shared_s = _campaign_seconds(remat, inputs, cfg, seed=seed,
                                 repeats=timing_repeats)
    independent_s = _campaign_seconds(independent, inputs, cfg, seed=seed,
                                      repeats=timing_repeats)
    speedup = independent_s / shared_s

    # -- bar 2: retained encoder state ------------------------------------
    remat_state = state_nbytes(remat.primary.encoder)
    mat_state = state_nbytes(materialized.primary.encoder)
    state_ratio = mat_state / max(remat_state, 1)

    with tempfile.TemporaryDirectory() as tmp:
        remat_path = os.path.join(tmp, "remat.npz")
        mat_path = os.path.join(tmp, "mat.npz")
        remat.save(remat_path)
        materialized.save(mat_path)
        remat_file = os.path.getsize(remat_path)
        mat_file = os.path.getsize(mat_path)

    # -- bar 3: outcome identity across schedules -------------------------
    oracle = CrossModelOracle()
    keys = {}
    for name, target in (("remat", remat), ("materialized", materialized)):
        sequential = _outcome_key(_sequential_outcomes(target, inputs, cfg, seed=seed))
        batched = _outcome_key(
            BatchedExecutor(batch_size=2)
            .run(target, "gauss", inputs, config=cfg, oracle=oracle, rng=seed)
            .outcomes
        )
        with ProcessExecutor(n_workers=2) as pool:
            process = _outcome_key(
                pool.run(
                    target, "gauss", inputs, config=cfg, oracle=oracle, rng=seed
                ).outcomes
            )
        keys[name] = {"sequential": sequential, "batched": batched, "process": process}
    identical = (
        keys["remat"] == keys["materialized"]
        and keys["remat"]["sequential"] == keys["remat"]["batched"] == keys["remat"]["process"]
    )

    return {
        "dimension": dimension,
        "k": K_MEMBERS,
        "shared_campaign_s": shared_s,
        "independent_campaign_s": independent_s,
        "shared_speedup": speedup,
        "remat_state_bytes": remat_state,
        "materialized_state_bytes": mat_state,
        "state_ratio": state_ratio,
        "remat_file_bytes": remat_file,
        "materialized_file_bytes": mat_file,
        "outcomes_identical": identical,
    }


def report(result) -> str:
    return "\n".join(
        [
            f"[shared-codebook] D={result['dimension']}, K={result['k']}:",
            f"{'metric':32s} {'independent':>14s} {'shared/remat':>14s}",
            f"{'campaign seconds (encode-bound)':32s} "
            f"{result['independent_campaign_s']:14.3f} "
            f"{result['shared_campaign_s']:14.3f}",
            f"{'shared-encode speedup':32s} {'1.0x':>14s} "
            f"{result['shared_speedup']:13.1f}x",
            f"{'encoder state bytes':32s} {result['materialized_state_bytes']:14d} "
            f"{result['remat_state_bytes']:14d}",
            f"{'state ratio':32s} {'1.0x':>14s} {result['state_ratio']:13.1f}x",
            f"{'ensemble .npz bytes':32s} {result['materialized_file_bytes']:14d} "
            f"{result['remat_file_bytes']:14d}",
            f"{'outcomes identical (3 schedules)':32s} {'':>14s} "
            f"{str(result['outcomes_identical']):>14s}",
        ]
    )


def assert_acceptance(result, *, shared_bar=MIN_SHARED_SPEEDUP) -> None:
    assert result["outcomes_identical"], (
        "rematerialized campaign outcomes diverged from materialized "
        "(or across sequential/batched/process schedules)"
    )
    assert result["shared_speedup"] >= shared_bar, (
        f"shared-encode K={result['k']} campaign only "
        f"{result['shared_speedup']:.2f}x the per-member lock-step path, "
        f"below the {shared_bar}x bar"
    )
    assert result["state_ratio"] >= MIN_STATE_RATIO, (
        f"rematerialized encoder state only {result['state_ratio']:.1f}x "
        f"smaller, below the {MIN_STATE_RATIO}x bar"
    )
    assert result["remat_file_bytes"] < result["materialized_file_bytes"]


def _record(result) -> None:
    from conftest import write_bench_record

    write_bench_record(
        "bench_shared_codebook",
        metrics={
            "shared_speedup": result["shared_speedup"],
            "state_ratio": result["state_ratio"],
            "remat_state_bytes": result["remat_state_bytes"],
            "materialized_state_bytes": result["materialized_state_bytes"],
            "remat_file_bytes": result["remat_file_bytes"],
            "materialized_file_bytes": result["materialized_file_bytes"],
            "outcomes_identical": result["outcomes_identical"],
        },
        config={"dimension": result["dimension"], "k": result["k"],
                "n_train": N_TRAIN, "fuzz_inputs": FUZZ_INPUTS},
    )


def test_shared_codebook_bars(benchmark):
    """K=5 shared encode ≥2× lock-step, remat state ≥50× smaller, identical."""
    from conftest import run_once

    result = run_once(benchmark, lambda: run_comparison(PAPER_DIMENSION, N_TRAIN))
    print("\n" + report(result))
    _record(result)
    assert_acceptance(result)


def test_quick_scale_identity():
    """Cheap guard (runs without --benchmark-only): remat == materialized."""
    remat, materialized, images = build_shared_pair(1024, 80, k=3, seed=7)
    cfg = HDTestConfig(iter_times=4)
    inputs = list(images[:3])
    a = _outcome_key(_sequential_outcomes(remat, inputs, cfg, seed=7))
    b = _outcome_key(_sequential_outcomes(materialized, inputs, cfg, seed=7))
    assert a == b
    assert isinstance(remat.primary.encoder.position_memory.materialize(), ItemMemory)


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke reading without plugins."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller model + short loops (CI smoke)")
    args = parser.parse_args(argv)

    # 4096 keeps the smoke fast; since the fused block kernels sped the
    # per-member lock-step arm too, the quick-scale ratio sits near 2x
    # (2.2x at paper scale, where the 2x bar is asserted), so the smoke
    # pins a sanity floor instead of the paper-scale bar.
    dimension = 4096 if args.quick else PAPER_DIMENSION
    n_train = 120 if args.quick else N_TRAIN
    result = run_comparison(
        dimension, n_train,
        fuzz_iters=4 if args.quick else FUZZ_ITERS,
        timing_repeats=1 if args.quick else 2,
    )
    print(report(result))
    _record(result)
    shared_bar = 1.6 if args.quick else MIN_SHARED_SPEEDUP
    assert_acceptance(result, shared_bar=shared_bar)
    print(f"[shared-codebook] acceptance OK (bars: {shared_bar}x shared "
          f"encode, {MIN_STATE_RATIO}x smaller state, identical outcomes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
