"""Ablation: one-shot accumulation vs adaptive (retraining) epochs.

The paper trains with a single accumulation epoch (Sec. III-B) and
defers accuracy-oriented training advances to the retraining literature
it cites (Discussion, ref. [32]).  This bench quantifies what adaptive
epochs buy on this dataset — and what they cost in robustness: a model
with sharper decision boundaries can be *harder* or *easier* to fuzz,
which is exactly the interplay HDTest exists to measure.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import SEED, run_once

from repro.fuzz import HDTest, HDTestConfig
from repro.hdc import HDCClassifier, PixelEncoder

DIMENSION = 4096
N_TRAIN = 800
N_FUZZ = 8


@pytest.fixture(scope="module")
def trained_pair(digit_data):
    train, test = digit_data
    images, labels = train.images[:N_TRAIN], train.labels[:N_TRAIN]

    one_shot = HDCClassifier(PixelEncoder(dimension=DIMENSION, rng=SEED), 10)
    one_shot.fit(images, labels)

    adaptive = HDCClassifier(PixelEncoder(dimension=DIMENSION, rng=SEED), 10)
    history = adaptive.fit_adaptive(images, labels, epochs=8)
    return one_shot, adaptive, history


def test_one_shot_training(benchmark, trained_pair, digit_data):
    _, test = digit_data
    one_shot, _, _ = trained_pair
    accuracy = run_once(benchmark, lambda: one_shot.score(test.images, test.labels))
    print(f"\n[training=one-shot] test accuracy {accuracy:.3f}")
    assert accuracy > 0.6


def test_adaptive_training(benchmark, trained_pair, digit_data):
    _, test = digit_data
    one_shot, adaptive, history = trained_pair
    accuracy = run_once(benchmark, lambda: adaptive.score(test.images, test.labels))
    base = one_shot.score(test.images, test.labels)
    print(f"\n[training=adaptive] test accuracy {accuracy:.3f} "
          f"(one-shot {base:.3f}; training history {['%.3f' % h for h in history]})")
    # Adaptive epochs must not hurt, and normally help.
    assert accuracy >= base - 0.03


def test_adaptive_model_fuzzability(benchmark, trained_pair, digit_data):
    _, test = digit_data
    one_shot, adaptive, _ = trained_pair
    images = test.images[:N_FUZZ].astype(np.float64)

    def fuzz_both():
        r_one = HDTest(one_shot, "gauss", config=HDTestConfig(iter_times=60), rng=91).fuzz(images)
        r_ada = HDTest(adaptive, "gauss", config=HDTestConfig(iter_times=60), rng=91).fuzz(images)
        return r_one, r_ada

    r_one, r_ada = run_once(benchmark, fuzz_both)
    print(f"\n[fuzzability] one-shot iters {r_one.avg_iterations:.2f} vs "
          f"adaptive iters {r_ada.avg_iterations:.2f}")
    # Both models remain fuzzable — HDTest's premise is model-agnostic.
    assert r_one.success_rate > 0.5
    assert r_ada.success_rate > 0.5
