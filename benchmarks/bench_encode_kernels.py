"""Fused encode path vs the per-child/per-plan schedule it replaced.

Encoding is ~90% of campaign wall clock (PR-7 phase telemetry).  Before
the fused path landed it was paid twice over in Python scheduling: the
engine looped over *plans* (re-hashing cache keys, delta-encoding, and
rebuilding hypervectors once per input), and inside each call the
encoder looped over *children* (one gather/multiply/reduce per row).
The fused path — blocked kernels in
:mod:`repro.hdc.encoders._blocked` plus the hoisted schedule in
:meth:`repro.fuzz.batch.BatchedHDTest._encode_plans_delta` — runs the
same exact integer algebra in O(1) kernel calls per iteration.

Two measurements, two claims:

* **Engine encode phase** (the headline): a real batched campaign with
  phase telemetry, fused schedule vs the pre-fusion schedule
  reconstructed verbatim from the pre-PR source (per-plan loop +
  per-child kernel loop).  Asserted per strategy at paper scale:
  ``rand`` — the paper's canonical sparse mutator, where the deleted
  per-child dispatch dominated — must clear 2×; ``gauss`` — a dense
  mutator whose per-child loop was already bound on the same codebook
  gathers the fused kernel performs — must hold parity.  Campaign
  outcomes are checked bit-identical between the two schedules while
  we're at it.
* **Kernel microbench** (diagnostics): ``accumulate_delta`` on one
  already-assembled block vs one call per child, per delta family.
  Sparse blocks win on deleted per-call overhead; dense blocks are
  memory-bound on the codebook gathers either way, so the fused kernel
  is held to parity there.  The per-child arm here reuses the *new*
  kernel row-by-row (it has no old-style inner loop to fall back to),
  so these ratios understate the engine-level win — the bars reflect
  that.

Results are bit-identical by construction
(``tests/hdc/test_fused_kernels.py`` pins the kernels; the outcome
check below pins the schedule), so this file only has to defend speed.

Run under pytest (full scale)::

    pytest benchmarks/bench_encode_kernels.py --benchmark-only -s

or standalone for a quick smoke reading (used by CI)::

    python benchmarks/bench_encode_kernels.py --quick
"""

from __future__ import annotations

import time

import numpy as np

from repro.fuzz import HDTestConfig
from repro.fuzz.batch import BatchedHDTest
from repro.hdc import PixelEncoder
from repro.hdc.encoders.ngram import NgramEncoder
from repro.hdc.encoders.record import RecordEncoder
from repro.utils.cache import resolve_with_cache

SEED = 37
N_CHILDREN = 256
TIMING_REPEATS = 5
ENGINE_TIMING_REPEATS = 2
#: Per-strategy engine bars: the batched campaign's telemetry-measured
#: encode phase under the fused schedule vs the pre-fusion schedule.
#: ``rand`` changes a handful of pixels per child, so the pre-fusion
#: cost was almost all per-child Python dispatch — the fused schedule
#: must clear the issue's 2× bar there.  ``gauss`` re-quantises most of
#: the image, so both schedules are bound on the same codebook-gather
#: traffic and the fused path is held to parity (≥ 0.9× under timer
#: noise).  Quick (CI smoke) campaigns finish in tens of milliseconds —
#: fixed per-iteration overhead and timer noise dominate — so the smoke
#: leg only asserts the fused path still wins / holds parity; the 2×
#: claim itself is asserted at paper scale.
MIN_ENCODE_PHASE_SPEEDUP = 2.0
ENGINE_BARS = {"rand": MIN_ENCODE_PHASE_SPEEDUP, "gauss": 0.9}
ENGINE_BARS_QUICK = {"rand": 1.2, "gauss": 0.8}
ENGINE_STRATEGIES = tuple(ENGINE_BARS)

#: Kernel-microbench bars.  The per-child arm re-enters the *fused*
#: kernel once per row, so the only difference is per-call overhead —
#: a thin margin at D = 10 000 where one row is already 10 000 wide.
#: Sparse blocks must still win it outright; dense (``gauss``-like)
#: blocks are gather-bound and held to parity.
MIN_SPARSE_SPEEDUP = 1.2
MIN_SPARSE_SPEEDUP_QUICK = 1.5  # overhead share grows as D shrinks
MIN_DENSE_SPEEDUP = 0.8


# ---------------------------------------------------------------------------
# Engine encode phase: fused schedule vs the pre-fusion schedule
# ---------------------------------------------------------------------------
class _PreFusionSurface:
    """The pre-fusion pixel delta kernel, verbatim, behind a modern surface.

    ``accumulate_delta`` is the exact per-child loop the encoder shipped
    before the blocked kernels: one ``flatnonzero``, three codebook
    ``take`` gathers, one multiply, and one reduction *per child*.
    ``hvs_from_accumulators`` is likewise the pre-fusion
    ``np.where(…, 1, -1).astype(int8)`` thresholding (the fused path
    binarizes through an int8 view instead).  Remaining surface calls
    delegate, so the baseline engine differs from the fused one only in
    its encode phase.
    """

    def __init__(self, surface, encoder):
        self._surface = surface
        self._encoder = encoder

    def child_levels(self, batch):
        return self._surface.child_levels(batch)

    def seed_side_data(self, stacked):
        return self._surface.seed_side_data(stacked)

    def hvs_from_accumulators(self, accs):
        return (np.where(np.asarray(accs) >= 0, 1, -1).astype(np.int8),)

    def accumulate_delta(self, levels, parents, parent_accs):
        enc = self._encoder
        pos, val = enc._position_memory, enc._value_memory  # noqa: SLF001
        out = parent_accs.astype(np.int64, copy=True)
        int16_safe = np.iinfo(np.int16).max // 2
        for i in range(levels.shape[0]):
            changed = np.flatnonzero(levels[i] != parents[i])
            if changed.size == 0:
                continue
            dval = val.take(levels[i, changed]) - val.take(parents[i, changed])
            np.multiply(pos.take(changed), dval, out=dval)
            sum_dtype = np.int16 if changed.size <= int16_safe else np.int64
            out[i] += dval.sum(axis=0, dtype=sum_dtype)
        return out.astype(parent_accs.dtype)


class _PreFusionEngine(BatchedHDTest):
    """BatchedHDTest with the pre-fusion encode schedule reinstated.

    ``_encode_plans_delta`` is the pre-PR implementation verbatim: one
    pass per plan — per-plan cache-key hashing, per-plan delta call
    (itself a per-child loop via :class:`_PreFusionSurface`), per-plan
    hypervector rebuild — against which the fused single-block schedule
    is measured.
    """

    def _encode_plans_delta(self, surface, plans, pool, caches, capacity):
        surface = _PreFusionSurface(surface, self.model.encoder)
        dedupe = self._config.dedupe
        encoded = []
        for state, children, parent_ids in plans:
            levels = surface.child_levels(children)
            parent_accs_all = pool.accumulators(state.index)

            def delta_missing(positions, state=state, levels=levels,
                              parent_ids=parent_ids,
                              parent_accs_all=parent_accs_all):
                self._count_encodes(len(positions))
                parent_levels = pool.levels(state.index)[parent_ids[positions]]
                parent_accs = parent_accs_all[parent_ids[positions]]
                return surface.accumulate_delta(
                    levels[positions], parent_levels, parent_accs
                )

            if dedupe:
                keys = [self._child_key(children[j]) for j in range(len(children))]
                cache = caches.get(state.cache_key, capacity)
                accs = np.stack(resolve_with_cache(cache, keys, delta_missing))
            else:
                accs = delta_missing(list(range(len(children))))
            bundle = surface.hvs_from_accumulators(accs)
            encoded.append((bundle, accs, levels))
        return encoded


def _campaign_encode_seconds(engine_cls, model, images, *, strategy,
                             iter_times):
    """Telemetry-measured encode-phase seconds of one campaign."""
    from repro.obs import CampaignTelemetry

    obs = CampaignTelemetry()
    config = HDTestConfig(iter_times=iter_times)
    engine = engine_cls(model, strategy, config=config, rng=SEED, telemetry=obs)
    result = engine.fuzz(images)
    outcomes = [(o.success, o.iterations) for o in result.outcomes]
    return obs.phase_seconds["encode"], obs.phase_seconds, outcomes


def run_engine_encode_phase(model, images, *, iter_times,
                            repeats=ENGINE_TIMING_REPEATS):
    """Per-strategy encode-phase seconds, fused vs pre-fusion schedule.

    Returns ``{strategy: (fused_s, prefusion_s, fused_phase_seconds)}``,
    min-of-*repeats* per arm.  The two engines are timed interleaved so
    clock drift on shared runners lands on both arms of the ratio
    equally; campaign outcomes are asserted identical between the
    schedules (same RNG, bit-identical encodes ⇒ bit-identical campaign
    decisions).
    """
    results = {}
    for strategy in ENGINE_STRATEGIES:
        fused = prefusion = float("inf")
        phases = {}
        for _ in range(repeats):
            seconds, phase_seconds, fused_outcomes = _campaign_encode_seconds(
                BatchedHDTest, model, images, strategy=strategy,
                iter_times=iter_times,
            )
            if seconds < fused:
                fused, phases = seconds, phase_seconds
            seconds, _, legacy_outcomes = _campaign_encode_seconds(
                _PreFusionEngine, model, images, strategy=strategy,
                iter_times=iter_times,
            )
            prefusion = min(prefusion, seconds)
            assert fused_outcomes == legacy_outcomes, (
                f"fused and pre-fusion schedules disagreed on {strategy} "
                "campaign outcomes"
            )
        results[strategy] = (fused, prefusion, phases)
    return results


# ---------------------------------------------------------------------------
# Kernel microbench: one fused block vs one call per child
# ---------------------------------------------------------------------------
def _per_row_delta(encoder, levels, parents, accs):
    """One ``accumulate_delta`` call per child (the pre-fusion granularity)."""
    out = np.empty((levels.shape[0], encoder.dimension), dtype=np.int64)
    for i in range(levels.shape[0]):
        out[i] = encoder.accumulate_delta(
            levels[i : i + 1], parents[i : i + 1], accs[i : i + 1]
        )[0]
    return out


def _mutate(levels, n_levels, n_changed, rng):
    children = levels.copy()
    for i in range(children.shape[0]):
        idx = rng.choice(children.shape[1], size=n_changed, replace=False)
        children[i, idx] = rng.integers(0, n_levels, n_changed)
    return children


def _delta_workloads(dimension, n_children):
    """(label, encoder, child_levels, parent_levels, parent_accs) cases."""
    rng = np.random.default_rng(SEED)
    cases = []

    pixel = PixelEncoder(shape=(28, 28), dimension=dimension, rng=SEED)
    parents = rng.integers(0, 256, (n_children, 784))
    accs = pixel.accumulate_batch(
        parents.reshape(n_children, 28, 28).astype(np.float64)
    )
    for label, n_changed in (("pixel-sparse", 6), ("pixel-dense", 400)):
        cases.append(
            (label, pixel, _mutate(parents, 256, n_changed, rng), parents, accs)
        )

    record = RecordEncoder(617, levels=64, dimension=dimension, rng=SEED)
    records = rng.random((n_children, 617))
    rec_parents = record.quantize(records)
    rec_accs = record.accumulate_batch(records)
    cases.append(
        ("record-sparse", record, _mutate(rec_parents, 64, 4, rng),
         rec_parents, rec_accs)
    )

    ngram = NgramEncoder(3, dimension=dimension, rng=SEED)
    n_alpha = ngram.item_memory.size
    ng_parents = rng.integers(0, n_alpha, (n_children, 64))
    ng_accs = ngram.accumulate_batch(ng_parents)
    cases.append(
        ("ngram-sparse", ngram, _mutate(ng_parents, n_alpha, 3, rng),
         ng_parents, ng_accs)
    )
    return cases


def run_kernel_comparison(dimension, n_children):
    """Time fused vs per-child on every workload; returns report rows.

    The two schedules are timed interleaved (min-of-N each) so clock
    drift on shared runners lands on both arms of the ratio equally.
    """
    rows = []
    for label, enc, children, parents, accs in _delta_workloads(
        dimension, n_children
    ):
        fused = looped = float("inf")
        for _ in range(TIMING_REPEATS):
            start = time.perf_counter()
            enc.accumulate_delta(children, parents, accs)
            fused = min(fused, time.perf_counter() - start)
            start = time.perf_counter()
            _per_row_delta(enc, children, parents, accs)
            looped = min(looped, time.perf_counter() - start)
        rows.append((label, fused, looped, looped / fused))
    return rows


# ---------------------------------------------------------------------------
# Reporting, recording, bars
# ---------------------------------------------------------------------------
def _report(rows, dimension, n_children):
    lines = [
        f"[encode-kernels] fused block vs per-child calls "
        f"(D={dimension}, {n_children} children):",
        f"{'workload':14s} {'fused':>9s} {'per-child':>10s} {'speedup':>8s}",
    ]
    for label, fused, looped, speedup in rows:
        lines.append(
            f"{label:14s} {1e3 * fused:8.1f}ms {1e3 * looped:9.1f}ms "
            f"{speedup:7.2f}x"
        )
    return "\n".join(lines)


def _report_engine(engine_results):
    lines = []
    for strategy, (fused, prefusion, phases) in engine_results.items():
        encode_share = fused / max(sum(phases.values()), 1e-12)
        lines.append(
            f"[encode-kernels] campaign encode phase ({strategy}): "
            f"fused {fused:.2f}s vs pre-fusion {prefusion:.2f}s "
            f"-> {prefusion / fused:.2f}x "
            f"(encode share of fused campaign: {100 * encode_share:.0f}%)"
        )
    return "\n".join(lines)


def _record_rows(rows, *, dimension, n_children, engine=None):
    from conftest import write_bench_record

    metrics = {f"{label}_speedup": speedup for label, _, _, speedup in rows}
    if engine is not None:
        for strategy, (fused, prefusion, _) in engine.items():
            metrics[f"encode_phase_seconds_{strategy}"] = fused
            metrics[f"encode_phase_speedup_{strategy}"] = prefusion / fused
    write_bench_record(
        "bench_encode_kernels",
        metrics=metrics,
        config={"dimension": dimension, "n_children": n_children},
    )


def _check_bars(rows, *, sparse_bar, dense_bar):
    for label, _, _, speedup in rows:
        bar = dense_bar if label.endswith("dense") else sparse_bar
        assert speedup >= bar, (
            f"{label}: fused kernel at {speedup:.2f}x the per-child "
            f"schedule, below the {bar}x bar"
        )


def _check_engine_bars(engine_results, bars=ENGINE_BARS):
    for strategy, (fused, prefusion, _) in engine_results.items():
        bar = bars[strategy]
        assert prefusion >= bar * fused, (
            f"{strategy}: fused encode phase at {prefusion / fused:.2f}x "
            f"the pre-fusion schedule, below the {bar}x bar"
        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def test_fused_kernels_never_lose_to_per_child_calls(benchmark):
    """Paper scale: every sparse family wins, dense holds parity."""
    from conftest import PAPER_DIMENSION, run_once

    rows = run_once(
        benchmark, lambda: run_kernel_comparison(PAPER_DIMENSION, N_CHILDREN)
    )
    print("\n" + _report(rows, PAPER_DIMENSION, N_CHILDREN))
    _record_rows(rows, dimension=PAPER_DIMENSION, n_children=N_CHILDREN)
    _check_bars(
        rows, sparse_bar=MIN_SPARSE_SPEEDUP, dense_bar=MIN_DENSE_SPEEDUP
    )


def test_encode_phase_speedup(benchmark, paper_model, fuzz_images):
    """Paper scale: sparse campaigns clear 2×, dense hold parity."""
    from conftest import run_once

    images = fuzz_images[:12]
    engine_results = run_once(
        benchmark,
        lambda: run_engine_encode_phase(paper_model, images, iter_times=50),
    )
    print("\n" + _report_engine(engine_results))
    _record_rows(
        [], dimension=paper_model.encoder.dimension, n_children=N_CHILDREN,
        engine=engine_results,
    )
    _check_engine_bars(engine_results)


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke reading without plugins."""
    import argparse

    from repro.datasets import load_digits
    from repro.hdc import HDCClassifier

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small dimension + short loops (CI smoke)")
    args = parser.parse_args(argv)

    dimension = 2048 if args.quick else 10_000
    n_children = 64 if args.quick else N_CHILDREN
    n_train = 400 if args.quick else 1500
    n_images = 8 if args.quick else 12
    iter_times = 15 if args.quick else 50

    rows = run_kernel_comparison(dimension, n_children)
    print(_report(rows, dimension, n_children))

    train, test = load_digits(n_train=n_train, n_test=max(n_images, 32), seed=42)
    model = HDCClassifier(PixelEncoder(dimension=dimension, rng=42), 10).fit(
        train.images, train.labels
    )
    images = test.images[:n_images].astype(np.float64)
    engine_results = run_engine_encode_phase(
        model, images, iter_times=iter_times
    )
    print(_report_engine(engine_results))
    _record_rows(
        rows, dimension=dimension, n_children=n_children,
        engine=engine_results,
    )
    _check_bars(
        rows,
        sparse_bar=MIN_SPARSE_SPEEDUP_QUICK if args.quick else MIN_SPARSE_SPEEDUP,
        dense_bar=MIN_DENSE_SPEEDUP,
    )
    _check_engine_bars(
        engine_results, ENGINE_BARS_QUICK if args.quick else ENGINE_BARS
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
