"""Packed binary backend: query throughput and memory vs the unpacked family.

The packed subsystem's acceptance bar (ISSUE 2):

* **≥ 3×** associative-memory query throughput versus the unpacked
  dense-binary path at the paper's scale (D = 10 000) — the unpacked
  memory materialises an ``(n, C, D)`` byte tensor per query batch,
  the packed one XORs ``(n, D//64)`` uint64 blocks and popcounts;
* **~8×** hypervector memory reduction (exactly ``D / (8·ceil(D/64))``
  — 7.96× at D = 10 000);
* outcomes stay **bit-identical**: same predictions, and a Table
  II-style ``gauss`` campaign over the same inputs produces identical
  per-input fuzzing outcomes on both representations (the packed rows
  are also reported for throughput context).

Run under pytest (paper scale)::

    pytest benchmarks/bench_packed_backend.py --benchmark-only -s

or standalone for a quick smoke reading (used by CI)::

    python benchmarks/bench_packed_backend.py --quick
"""

from __future__ import annotations

import time

import numpy as np

from repro.fuzz import BatchedHDTest, HDTestConfig
from repro.hdc import PackedBinaryHDCClassifier, PackedPixelEncoder

PAPER_DIMENSION = 10_000
SEED = 42
N_TRAIN = 300
N_QUERIES = 128
FUZZ_INPUTS = 6
FUZZ_ITERS = 15

#: Acceptance bars.
MIN_QUERY_SPEEDUP = 3.0
MIN_MEMORY_RATIO = 7.5  # "~8x": 7.96x at D=10000, exactly 8x when 64 | D


def build_model_pair(dimension, n_train, seed=SEED):
    """(binary, packed) classifiers sharing one training pass.

    Training encodes once through the packed encoder; the unpacked
    model is the exact `to_binary()` conversion, so the two agree bit
    for bit by construction and the comparison is purely about the
    representation.
    """
    from repro.datasets import load_digits

    train, test = load_digits(n_train=n_train, n_test=N_QUERIES, seed=seed)
    encoder = PackedPixelEncoder(dimension=dimension, rng=seed)
    packed = PackedBinaryHDCClassifier(encoder, n_classes=10).fit(
        train.images, train.labels
    )
    return packed.to_binary(), packed, test


def _time_queries(am, queries, *, min_seconds=0.2):
    """Queries/sec of ``am.similarities`` over repeated batches."""
    am.similarities(queries)  # warm-up (class-HV cache, allocators)
    repeats = 0
    start = time.perf_counter()
    while True:
        am.similarities(queries)
        repeats += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return repeats * len(queries) / elapsed


def run_comparison(dimension, n_train, *, fuzz_iters=FUZZ_ITERS, seed=SEED):
    """Measure the packed-vs-unpacked table; returns a result dict."""
    binary, packed, test = build_model_pair(dimension, n_train, seed)
    images = test.images.astype(np.float64)

    bits = binary.encode_batch(images)
    words = packed.encode_batch(images)
    np.testing.assert_array_equal(
        binary.predict_hv(bits), packed.predict_hv(words)
    )
    memory_ratio = bits.nbytes / words.nbytes

    unpacked_qps = _time_queries(binary.associative_memory, bits)
    packed_qps = _time_queries(packed.associative_memory, words)

    # Table II-style gauss campaign on both representations.
    cfg = HDTestConfig(iter_times=fuzz_iters)
    inputs = list(images[:FUZZ_INPUTS])
    with_binary = BatchedHDTest(binary, "gauss", config=cfg).fuzz_outcomes(
        inputs, rng=seed
    )
    t0 = time.perf_counter()
    with_packed = BatchedHDTest(packed, "gauss", config=cfg).fuzz_outcomes(
        inputs, rng=seed
    )
    fuzz_elapsed = time.perf_counter() - t0
    identical = all(
        a.success == b.success
        and a.iterations == b.iterations
        and a.reference_label == b.reference_label
        for a, b in zip(with_binary, with_packed)
    )
    return {
        "dimension": dimension,
        "unpacked_qps": unpacked_qps,
        "packed_qps": packed_qps,
        "query_speedup": packed_qps / unpacked_qps,
        "memory_ratio": memory_ratio,
        "fuzz_identical": identical,
        "fuzz_inputs_per_sec": FUZZ_INPUTS / fuzz_elapsed,
    }


def report(result) -> str:
    return "\n".join(
        [
            f"[packed-backend] D={result['dimension']}, binary family:",
            f"{'metric':28s} {'unpacked':>12s} {'packed':>12s}",
            f"{'AM queries/sec':28s} {result['unpacked_qps']:12.0f} "
            f"{result['packed_qps']:12.0f}",
            f"{'query speedup':28s} {'1.0x':>12s} "
            f"{result['query_speedup']:11.1f}x",
            f"{'HV bytes ratio':28s} {'1.0x':>12s} "
            f"{result['memory_ratio']:11.2f}x",
            f"{'fuzz outcomes identical':28s} {'':>12s} "
            f"{str(result['fuzz_identical']):>12s}",
            f"{'packed fuzz inputs/sec':28s} {'':>12s} "
            f"{result['fuzz_inputs_per_sec']:12.2f}",
        ]
    )


def assert_acceptance(result) -> None:
    assert result["fuzz_identical"], "packed fuzzing diverged from unpacked"
    assert result["query_speedup"] >= MIN_QUERY_SPEEDUP, (
        f"packed queries {result['query_speedup']:.2f}x unpacked, "
        f"below the {MIN_QUERY_SPEEDUP}x bar"
    )
    assert MIN_MEMORY_RATIO <= result["memory_ratio"] <= 8.0 + 1e-9, (
        f"memory ratio {result['memory_ratio']:.2f}x outside the ~8x band"
    )


def _record(result) -> None:
    from conftest import write_bench_record

    write_bench_record(
        "bench_packed_backend",
        metrics={k: v for k, v in result.items() if k != "dimension"},
        config={"dimension": result["dimension"]},
    )


def test_packed_backend_speedup_and_memory(benchmark):
    """Packed AM must clear 3× queries/sec and ~8× memory at paper scale."""
    from conftest import run_once

    result = run_once(
        benchmark, lambda: run_comparison(PAPER_DIMENSION, N_TRAIN)
    )
    print("\n" + report(result))
    _record(result)
    assert_acceptance(result)


def test_quick_scale_equivalence():
    """Cheap guard (runs without --benchmark-only): packed == unpacked."""
    result = run_comparison(2048, 100, fuzz_iters=5)
    assert result["fuzz_identical"]
    assert result["memory_ratio"] == 8.0  # 2048 divides 64 exactly


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke reading without plugins."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny model + short loops (CI smoke)")
    args = parser.parse_args(argv)

    dimension = 2048 if args.quick else PAPER_DIMENSION
    n_train = 120 if args.quick else N_TRAIN
    result = run_comparison(dimension, n_train, fuzz_iters=8 if args.quick else FUZZ_ITERS)
    print(report(result))
    _record(result)
    assert_acceptance(result)
    print(f"[packed-backend] acceptance OK (bars: {MIN_QUERY_SPEEDUP}x queries, "
          f"~8x memory, bit-identical outcomes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
