"""Fig. 7: per-class normalized L1/L2 distances and fuzzing iterations.

The paper's per-class analysis (Sec. V-C) plots the three series over
digit classes and observes (a) a wide spread in per-class difficulty —
their "1" needs drastically more iterations than their "9" — and (b) no
apparent correlation between iteration count and distance.  Exact
class rankings depend on the dataset's confusion structure, so the
asserts target coverage and spread rather than the specific ordering.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis import (
    ascii_bar_chart,
    hardest_classes,
    per_class_series,
    per_class_table,
)
from repro.fuzz import HDTest, HDTestConfig

N_IMAGES = 60


def test_fig7_per_class_series(benchmark, paper_model, fuzz_images):
    def campaign():
        fuzzer = HDTest(
            paper_model, "gauss", config=HDTestConfig(iter_times=60), rng=17
        )
        result = fuzzer.fuzz(fuzz_images[:N_IMAGES])
        return per_class_series(result, n_classes=10)

    series = run_once(benchmark, campaign)

    print("\n" + per_class_table(series))
    print()
    print(ascii_bar_chart([str(d) for d in range(10)], series.iterations,
                          title="[Fig. 7] avg fuzzing iterations per class"))

    covered = ~np.isnan(series.iterations)
    assert covered.sum() >= 8, "need (nearly) all classes represented"

    # (a) per-class difficulty spreads: hardest ≥ 1.5× easiest.
    iters = series.iterations[covered]
    assert iters.max() >= 1.5 * iters.min()

    # (b) distances grouped per class exist for the successful classes.
    assert (~np.isnan(series.l2)).sum() >= 8

    ranking = hardest_classes(series)
    print(f"[Fig. 7] hardest → easiest classes: {ranking}")
