"""Shared fixtures for the benchmark harness.

Benches run at the paper's scale where it matters: hypervector
dimension D = 10 000 and a training set large enough to put the model
in the reported ≈90 % accuracy regime.  The model is trained once per
session and shared by every bench.

Run with:  pytest benchmarks/ --benchmark-only
(add ``-s`` to see the paper-vs-measured tables each bench prints).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_digits
from repro.hdc import HDCClassifier, PixelEncoder

PAPER_DIMENSION = 10_000
SEED = 42
N_TRAIN = 1500
N_TEST = 300


@pytest.fixture(scope="session")
def digit_data():
    """Paper-scale train/test split (synthetic unless real MNIST found)."""
    return load_digits(n_train=N_TRAIN, n_test=N_TEST, seed=SEED)


@pytest.fixture(scope="session")
def paper_model(digit_data):
    """The Sec. III HDC model at the paper's D = 10 000."""
    train, _ = digit_data
    encoder = PixelEncoder(dimension=PAPER_DIMENSION, rng=SEED)
    return HDCClassifier(encoder, n_classes=10).fit(train.images, train.labels)


@pytest.fixture(scope="session")
def fuzz_images(digit_data):
    """Float64 image pool for fuzzing campaigns."""
    _, test = digit_data
    return test.images.astype(np.float64)


def run_once(benchmark, fn):
    """Record a single timed execution of *fn* (campaign-scale benches)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


# -- text-domain fixtures (bench_text_fuzzing) ----------------------------
TEXT_LENGTH = 120
N_LANGUAGES = 4


@pytest.fixture(scope="session")
def text_corpus():
    """Paper-scale synthetic language corpus (4 Markov languages)."""
    from repro.datasets import make_language_dataset

    return make_language_dataset(
        n_per_class=60, n_languages=N_LANGUAGES, length=TEXT_LENGTH, seed=SEED
    )


@pytest.fixture(scope="session")
def text_model(text_corpus):
    """The Rahimi-style n-gram language model at D = 10 000."""
    from repro.hdc import HDCClassifier, NgramEncoder

    train, _ = text_corpus.split(0.8, rng=0)
    encoder = NgramEncoder(n=3, dimension=PAPER_DIMENSION, rng=SEED)
    return HDCClassifier(encoder, n_classes=text_corpus.n_classes).fit(
        list(train.texts), train.labels
    )


@pytest.fixture(scope="session")
def fuzz_texts(text_corpus):
    """String pool for text fuzzing campaigns."""
    _, test = text_corpus.split(0.8, rng=0)
    return list(test.texts)
