"""Shared fixtures for the benchmark harness.

Benches run at the paper's scale where it matters: hypervector
dimension D = 10 000 and a training set large enough to put the model
in the reported ≈90 % accuracy regime.  The model is trained once per
session and shared by every bench.

Run with:  pytest benchmarks/ --benchmark-only
(add ``-s`` to see the paper-vs-measured tables each bench prints).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import load_digits
from repro.hdc import HDCClassifier, PixelEncoder

PAPER_DIMENSION = 10_000
SEED = 42
N_TRAIN = 1500
N_TEST = 300

# -- machine-readable bench records ----------------------------------------
#: Directory override for the JSON records (CI points this at an
#: artifact directory); default: ``benchmarks/results/``.
BENCH_RESULTS_DIR_ENV = "BENCH_RESULTS_DIR"


def _bench_results_dir() -> Path:
    override = os.environ.get(BENCH_RESULTS_DIR_ENV)
    path = Path(override) if override else Path(__file__).parent / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_bench_record(name, *, metrics, config=None):
    """Write (or merge into) ``BENCH_<name>.json`` for bench *name*.

    One record per bench module, so the perf trajectory is diffable
    across PRs from CI artifacts: ``metrics`` maps metric name → value
    (numbers, bools, strings), ``config`` records the knobs that
    produced them.  Repeated calls from one module merge keys rather
    than clobbering the file — explicit domain metrics coexist with the
    timing stats the pytest session hook appends.  Returns the path.
    """
    path = _bench_results_dir() / f"BENCH_{name}.json"
    record = {"bench": name, "config": {}, "metrics": {}}
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = {}
        if isinstance(previous, dict):
            record.update(previous)
            record.setdefault("config", {})
            record.setdefault("metrics", {})
    record["bench"] = name
    record["metrics"].update(
        {k: (v.item() if isinstance(v, np.generic) else v) for k, v in metrics.items()}
    )
    if config:
        record["config"].update(
            {k: (v.item() if isinstance(v, np.generic) else v) for k, v in config.items()}
        )
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def pytest_sessionfinish(session, exitstatus):
    """Append each timed bench's stats to its module's JSON record.

    Covers every ``bench_*.py`` automatically under ``pytest
    benchmarks/ --benchmark-only``; benches with richer domain metrics
    additionally call :func:`write_bench_record` themselves (from
    pytest *and* their standalone ``--quick`` smoke entry points).
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    per_module: dict[str, dict] = {}
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        module = Path(str(bench.fullname).split("::")[0]).stem
        mean = getattr(stats, "mean", None)
        if mean is None:  # older plugin layout: Metadata.stats.stats
            mean = getattr(getattr(stats, "stats", None), "mean", None)
        if mean is None:
            continue
        per_module.setdefault(module, {})[f"{bench.name}_mean_s"] = float(mean)
    for module, timings in per_module.items():
        try:
            write_bench_record(module, metrics=timings)
        except OSError:  # pragma: no cover - records are best-effort
            pass


@pytest.fixture(scope="session")
def digit_data():
    """Paper-scale train/test split (synthetic unless real MNIST found)."""
    return load_digits(n_train=N_TRAIN, n_test=N_TEST, seed=SEED)


@pytest.fixture(scope="session")
def paper_model(digit_data):
    """The Sec. III HDC model at the paper's D = 10 000."""
    train, _ = digit_data
    encoder = PixelEncoder(dimension=PAPER_DIMENSION, rng=SEED)
    return HDCClassifier(encoder, n_classes=10).fit(train.images, train.labels)


@pytest.fixture(scope="session")
def fuzz_images(digit_data):
    """Float64 image pool for fuzzing campaigns."""
    _, test = digit_data
    return test.images.astype(np.float64)


def run_once(benchmark, fn):
    """Record a single timed execution of *fn* (campaign-scale benches)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


# -- text-domain fixtures (bench_text_fuzzing) ----------------------------
TEXT_LENGTH = 120
N_LANGUAGES = 4


@pytest.fixture(scope="session")
def text_corpus():
    """Paper-scale synthetic language corpus (4 Markov languages)."""
    from repro.datasets import make_language_dataset

    return make_language_dataset(
        n_per_class=60, n_languages=N_LANGUAGES, length=TEXT_LENGTH, seed=SEED
    )


@pytest.fixture(scope="session")
def text_model(text_corpus):
    """The Rahimi-style n-gram language model at D = 10 000."""
    from repro.hdc import HDCClassifier, NgramEncoder

    train, _ = text_corpus.split(0.8, rng=0)
    encoder = NgramEncoder(n=3, dimension=PAPER_DIMENSION, rng=SEED)
    return HDCClassifier(encoder, n_classes=text_corpus.n_classes).fit(
        list(train.texts), train.labels
    )


@pytest.fixture(scope="session")
def fuzz_texts(text_corpus):
    """String pool for text fuzzing campaigns."""
    _, test = text_corpus.split(0.8, rng=0)
    return list(test.texts)
