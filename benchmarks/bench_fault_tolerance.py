"""Hardware-fault tolerance of the HDC model (Sec. II related work).

The HDC literature the paper builds on claims graceful degradation
under associative-memory bit flips — the property that makes HDC
attractive for unreliable low-power hardware.  This bench sweeps AM
bit-flip rates and checks the curve: accuracy barely moves at 10 %
flips and collapses to chance only as flips approach 50 %.

Together with the HDTest benches this covers both robustness axes the
paper distinguishes: hardware faults (here) vs adversarial inputs
(everything else).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.hdc.faults import accuracy_under_faults

RATES = (0.0, 0.05, 0.1, 0.2, 0.3, 0.45)


def test_fault_tolerance_curve(benchmark, paper_model, digit_data):
    _, test = digit_data

    def sweep():
        return accuracy_under_faults(
            paper_model, test.images, test.labels, rates=RATES, rng=83
        )

    curve = run_once(benchmark, sweep)
    pretty = ", ".join(f"{r:.0%}→{a:.3f}" for r, a in curve.items())
    print(f"\n[fault tolerance] accuracy under AM bit flips: {pretty}")

    clean = curve[0.0]
    # Graceful degradation: 5% flips cost almost nothing, 10% stays
    # far above chance (measured: 0.953 → 0.943 → 0.830).
    assert curve[0.05] > clean - 0.05
    assert curve[0.1] > 0.5
    # The curve is (weakly) monotone down to heavy fault rates...
    assert curve[0.45] <= curve[0.05] + 0.02
    # ...and near 50% flips the memory is destroyed.
    assert curve[0.45] < clean - 0.3
