"""Sec. V-A: the HDC model's test accuracy ("around 90%").

Paper: "We use the MNIST database … for training and testing the HDC
model at an accuracy around 90%."  This bench times inference over the
test set and asserts the accuracy lands in that regime.
"""

from __future__ import annotations

from conftest import run_once

PAPER_ACCURACY = 0.90


def test_model_accuracy(benchmark, paper_model, digit_data):
    _, test = digit_data

    def evaluate():
        return paper_model.score(test.images, test.labels)

    accuracy = run_once(benchmark, evaluate)
    print(f"\n[Sec. V-A] test accuracy: measured {accuracy:.3f} "
          f"vs paper ≈{PAPER_ACCURACY:.2f}")
    # "around 90%": accept the regime, not the digit.
    assert accuracy > 0.80, f"accuracy {accuracy:.3f} below the paper's regime"


def test_training_throughput(benchmark, digit_data):
    """Time one full Sec. III-B training pass (encode + accumulate)."""
    from conftest import PAPER_DIMENSION, SEED

    from repro.hdc import HDCClassifier, PixelEncoder

    train, _ = digit_data
    images, labels = train.images[:300], train.labels[:300]
    encoder = PixelEncoder(dimension=PAPER_DIMENSION, rng=SEED)

    def fit():
        return HDCClassifier(encoder, n_classes=10).fit(images, labels)

    model = run_once(benchmark, fit)
    assert model.is_trained
