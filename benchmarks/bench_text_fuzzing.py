"""Text-campaign throughput: scratch-serial vs delta-serial vs batched.

The domain layer's performance claim: fuzzing *strings* through the
lock-step batched engine — with children represented as uint8 code rows
and encoded incrementally from their parents' n-gram accumulators — is
at least **3×** the paper-literal sequential loop that re-encodes every
child from scratch.  This bench times the same two-strategy text
campaign (``char_sub`` + ``char_swap`` over the synthetic language
pool, D = 10 000, length-120 strings) under each engine and asserts
that bar.

Where the speedup comes from:

* incremental (delta) n-gram encoding — a k-character substitution
  touches at most ``k·n`` n-grams of the ~118 per string, so a child's
  accumulator costs a handful of codebook gathers instead of a full
  ``(n_grams, D)`` product-and-sum;
* one fused predict per iteration across every active input (the
  batched engine's schedule);
* the per-input dedupe caches (``char_swap`` children collapse onto
  few distinct transpositions).

Run under pytest (full scale)::

    pytest benchmarks/bench_text_fuzzing.py --benchmark-only -s

or standalone for a quick smoke reading (used by CI)::

    python benchmarks/bench_text_fuzzing.py --quick
"""

from __future__ import annotations

import time

from repro.fuzz import (
    BatchedExecutor,
    HDTest,
    HDTestConfig,
    SerialExecutor,
    compare_strategies,
)

STRATEGIES = ("char_sub", "char_swap")
N_TEXTS = 16
ITER_TIMES = 50
SEED = 29

#: The acceptance bar: batched inputs/sec over the scratch-encode
#: serial baseline's inputs/sec.
MIN_BATCHED_SPEEDUP = 3.0


class _ScratchSerialExecutor(SerialExecutor):
    """The pre-delta sequential engine: every child encoded from scratch.

    Disables the incremental path so the bench keeps an honest
    paper-literal baseline (one full n-gram encode per child) to
    measure both modern engines against.
    """

    def run(self, model, strategy, inputs, *, domain=None, config=None,
            constraint=None, fitness=None, oracle=None, rng=None,
            telemetry=None):
        fuzzer = HDTest(
            model, strategy, domain=domain,
            config=config, constraint=constraint,
            fitness=fitness, oracle=oracle, rng=rng, telemetry=telemetry,
        )
        fuzzer._delta_encoder = lambda: None  # noqa: SLF001 - bench baseline
        result = fuzzer.fuzz(inputs)
        result.executor = "serial-scratch"
        return result


def _campaign_inputs_per_second(model, texts, executor, *, iter_times=ITER_TIMES):
    """Wall-clock inputs/sec of the two-strategy text campaign."""
    config = HDTestConfig(iter_times=iter_times)
    start = time.perf_counter()
    results = compare_strategies(
        model, texts, STRATEGIES, config=config, rng=SEED, executor=executor,
    )
    elapsed = time.perf_counter() - start
    processed = sum(result.n_inputs for result in results.values())
    return processed / elapsed, elapsed, results


def _report(rows):
    serial_ips = rows[0][1]
    lines = [
        f"[text-fuzzing] two-strategy text campaign ({STRATEGIES}):",
        f"{'executor':16s} {'inputs/sec':>10s} {'elapsed':>9s} {'speedup':>8s}",
    ]
    for name, ips, elapsed in rows:
        lines.append(
            f"{name:16s} {ips:10.2f} {elapsed:8.1f}s {ips / serial_ips:7.2f}x"
        )
    return "\n".join(lines)


def run_text_throughput_comparison(model, texts, *, iter_times=ITER_TIMES,
                                   batch_size=64):
    """Time the campaign under every engine; returns report rows."""
    rows = []
    for name, executor in (
        ("serial-scratch", _ScratchSerialExecutor()),
        ("serial-delta", SerialExecutor()),
        ("batched", BatchedExecutor(batch_size=batch_size)),
    ):
        ips, elapsed, _ = _campaign_inputs_per_second(
            model, texts, executor, iter_times=iter_times
        )
        rows.append((name, ips, elapsed))
    return rows


def _record_rows(rows, *, n_texts, iter_times) -> None:
    from conftest import write_bench_record

    write_bench_record(
        "bench_text_fuzzing",
        metrics={f"{name}_inputs_per_s": ips for name, ips, _ in rows},
        config={"n_texts": n_texts, "iter_times": iter_times},
    )


def test_batched_text_speedup(benchmark, text_model, fuzz_texts):
    """Batched text fuzzing must clear 3x the scratch-encode baseline."""
    from conftest import run_once

    texts = fuzz_texts[:N_TEXTS]
    rows = run_once(
        benchmark, lambda: run_text_throughput_comparison(text_model, texts)
    )
    print("\n" + _report(rows))
    _record_rows(rows, n_texts=len(texts), iter_times=ITER_TIMES)
    by_name = {name: ips for name, ips, _ in rows}
    baseline = by_name["serial-scratch"]
    assert by_name["batched"] >= MIN_BATCHED_SPEEDUP * baseline, (
        f"batched text engine {by_name['batched']:.2f} in/s is below "
        f"{MIN_BATCHED_SPEEDUP}x the scratch baseline ({baseline:.2f} in/s)"
    )


def test_batched_text_outcomes_match_serial_content(text_model, fuzz_texts):
    """Throughput must not change the campaign's scientific content."""
    texts = fuzz_texts[:6]
    config = HDTestConfig(iter_times=25)
    serial = compare_strategies(
        text_model, texts, ("char_sub",), config=config, rng=3, executor="serial"
    )["char_sub"]
    batched = compare_strategies(
        text_model, texts, ("char_sub",), config=config, rng=3, executor="batched"
    )["char_sub"]
    assert serial.n_inputs == batched.n_inputs
    # Same decision rule; per-input bit-identity under the shared RNG
    # discipline is covered by tests/fuzz/test_cross_modality.py.
    assert abs(serial.n_success - batched.n_success) <= 2


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke reading without plugins."""
    import argparse

    from repro.datasets import make_language_dataset
    from repro.hdc import HDCClassifier, NgramEncoder

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny model + short loops (CI smoke)")
    parser.add_argument("--n-texts", type=int, default=None)
    args = parser.parse_args(argv)

    dimension = 2048 if args.quick else 10_000
    length = 60 if args.quick else 120
    n_texts = args.n_texts or (8 if args.quick else N_TEXTS)
    iter_times = 15 if args.quick else ITER_TIMES

    corpus = make_language_dataset(
        n_per_class=max(12, (n_texts * 2) // 4), n_languages=4, length=length,
        seed=42,
    )
    train, test = corpus.split(0.7, rng=0)
    model = HDCClassifier(
        NgramEncoder(n=3, dimension=dimension, rng=42), corpus.n_classes
    ).fit(list(train.texts), train.labels)
    texts = list(test.texts)[:n_texts]
    rows = run_text_throughput_comparison(model, texts, iter_times=iter_times)
    print(_report(rows))
    _record_rows(rows, n_texts=n_texts, iter_times=iter_times)
    by_name = {name: ips for name, ips, _ in rows}
    baseline = by_name["serial-scratch"]
    print(f"[text-fuzzing] vs scratch baseline: "
          f"batched {by_name['batched'] / baseline:.2f}x, "
          f"delta-serial {by_name['serial-delta'] / baseline:.2f}x "
          f"(bar: {MIN_BATCHED_SPEEDUP}x at paper scale)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
