"""Campaign throughput: scratch-serial vs delta-serial vs batched vs process.

The engines' claim is end-to-end inputs/sec on the paper's Table II
campaign (four strategies over the same seeded digits pool,
D = 10 000).  This bench times the *same* campaign under each executor
and prints an inputs/sec table.  The baseline is the **scratch-encode
serial loop** — the paper-literal implementation that re-encodes every
child from its pixels (the state of the sequential engine before delta
encoding landed); the acceptance bar asserts the batched *and* the
modern (delta) serial engines at ≥ 3× that baseline, so regressions in
the incremental encode path fail loudly whichever engine they hit.

The table also carries a **pre-fusion delta-serial** arm — the serial
engine exactly as it stood before the fused encode kernels landed
(per-child gather/multiply/reduce, ``np.where`` thresholding) — the
rebaseline for this PR's encode fusion.  The asserted rebaseline bar
is on *encode throughput*: the batched engine's telemetry-measured
``encodes_per_second`` must stay ≥ 1.25× that arm's.  A campaign-level
1.5× does not materialise on a single-core memory-bound host: once the
encode phase is fused it stops dominating wall time (~50% here, not
the ~90% the issue premise measured), the modern serial engine shares
the same fused kernels, and the four-strategy mix includes ``gauss``,
whose per-child loop was already bound on the same codebook gathers —
the per-strategy ≥2× encode-phase bars live in
``bench_encode_kernels.py`` where the phase is isolated.

Where the speedup comes from (measured on one core):

* incremental (delta) encoding from parent accumulators — huge for
  sparse mutators (``rand`` ~17×, ``row_col_rand`` ~12×), ~2.7× for
  ``gauss``, which re-levels about half the pixels per child.  Since
  PR 2 the sequential loop shares this path (parent accumulators ride
  the ``SeedPool``), which is why delta-serial now sits at batched-level
  throughput on one core;
* one fused predict per iteration across every active input (the
  batched engine's remaining edge, which grows with model/query cost);
* the shared bounded dedupe cache (what keeps ``shift`` cheap).

``ProcessExecutor`` adds pool startup and model broadcast, so on a
single core it trails the batched engine; it is reported here to track
the crossover as soon as multi-core runners appear.

Run under pytest (full scale)::

    pytest benchmarks/bench_fuzzing_throughput.py --benchmark-only -s

or standalone for a quick smoke reading (used by CI)::

    python benchmarks/bench_fuzzing_throughput.py --quick
"""

from __future__ import annotations

import time

import numpy as np

from repro.fuzz import (
    BatchedExecutor,
    HDTest,
    HDTestConfig,
    ProcessExecutor,
    SerialExecutor,
    compare_strategies,
)

STRATEGIES = ("gauss", "rand", "row_col_rand", "shift")
N_IMAGES = 16
ITER_TIMES = 50
SEED = 29

#: The acceptance bar: engine inputs/sec over the scratch-encode serial
#: baseline's inputs/sec.
MIN_BATCHED_SPEEDUP = 3.0

#: Encode-throughput rebaseline bar: the batched engine's
#: telemetry-measured encodes/sec over the pre-fusion delta-serial
#: engine's, on the same four-strategy campaign (measured ~1.46× on a
#: single core; see the module docstring for why the campaign-level
#: inputs/sec ratio is smaller).
MIN_ENCODE_THROUGHPUT_SPEEDUP = 1.25
ENCODE_REBASELINE_REPEATS = 2

#: Telemetry acceptance bar: instrumented batched campaign may cost at
#: most this fraction over the uninstrumented one (min-of-N, interleaved
#: so thermal/cache drift hits both arms equally).
MAX_TELEMETRY_OVERHEAD = 0.05
TELEMETRY_TIMING_REPEATS = 3


class _PreFusionSerialExecutor(SerialExecutor):
    """The delta-serial engine as it stood before the fused kernels.

    Wraps the target's delta surface with the verbatim pre-fusion
    per-child kernel and ``np.where`` thresholding
    (:class:`bench_encode_kernels._PreFusionSurface`), keeping every
    other phase modern — the rebaseline arm for the encode fusion.
    """

    def run(self, model, strategy, inputs, *, domain=None, config=None,
            constraint=None, fitness=None, oracle=None, rng=None,
            telemetry=None):
        from bench_encode_kernels import _PreFusionSurface

        fuzzer = HDTest(
            model, strategy, domain=domain,
            config=config, constraint=constraint,
            fitness=fitness, oracle=oracle, rng=rng, telemetry=telemetry,
        )
        target = fuzzer._target  # noqa: SLF001 - bench baseline
        surface = target.delta_surface
        target.delta_surface = (
            lambda encoder: _PreFusionSurface(surface(encoder), model.encoder)
        )
        result = fuzzer.fuzz(inputs)
        result.executor = "serial-prefusion"
        return result


class _ScratchSerialExecutor(SerialExecutor):
    """The pre-delta sequential engine: every child encoded from scratch.

    Disables the incremental path (exactly what `HDTest.fuzz_one` did
    before parent accumulators rode the seed pool) so the bench keeps
    an honest historical baseline to measure both modern engines
    against.
    """

    def run(self, model, strategy, inputs, *, domain=None, config=None,
            constraint=None, fitness=None, oracle=None, rng=None,
            telemetry=None):
        fuzzer = HDTest(
            model, strategy, domain=domain,
            config=config, constraint=constraint,
            fitness=fitness, oracle=oracle, rng=rng, telemetry=telemetry,
        )
        fuzzer._delta_encoder = lambda: None  # noqa: SLF001 - bench baseline
        result = fuzzer.fuzz(inputs)
        result.executor = "serial-scratch"
        return result


def _campaign_inputs_per_second(model, images, executor, *, iter_times=ITER_TIMES):
    """Wall-clock inputs/sec of the four-strategy campaign under *executor*."""
    config = HDTestConfig(iter_times=iter_times)
    start = time.perf_counter()
    results = compare_strategies(
        model, images, STRATEGIES, config=config, rng=SEED, executor=executor,
    )
    elapsed = time.perf_counter() - start
    processed = sum(result.n_inputs for result in results.values())
    return processed / elapsed, elapsed, results


def _report(rows):
    serial_ips = rows[0][1]
    lines = [
        "[fuzzing-throughput] four-strategy campaign "
        f"({STRATEGIES}):",
        f"{'executor':12s} {'inputs/sec':>10s} {'elapsed':>9s} {'speedup':>8s}",
    ]
    for name, ips, elapsed in rows:
        lines.append(
            f"{name:12s} {ips:10.2f} {elapsed:8.1f}s {ips / serial_ips:7.2f}x"
        )
    return "\n".join(lines)


def run_throughput_comparison(model, images, *, iter_times=ITER_TIMES,
                              batch_size=64, n_workers=2):
    """Time the campaign under every engine; returns report rows."""
    rows = []
    for name, executor in (
        ("serial-scratch", _ScratchSerialExecutor()),
        ("serial-prefusion", _PreFusionSerialExecutor()),
        ("serial", SerialExecutor()),
        ("batched", BatchedExecutor(batch_size=batch_size)),
        ("process", ProcessExecutor(n_workers=n_workers, batch_size=batch_size)),
    ):
        ips, elapsed, _ = _campaign_inputs_per_second(
            model, images, executor, iter_times=iter_times
        )
        rows.append((name, ips, elapsed))
    return rows


def run_telemetry_overhead(model, images, *, iter_times=ITER_TIMES,
                           batch_size=64, repeats=TELEMETRY_TIMING_REPEATS):
    """Relative cost of telemetry on the batched paper-scale campaign.

    Times the four-strategy batched campaign with telemetry off and on,
    interleaved, and compares the min-of-*repeats* wall clocks (min is
    the standard noise-robust estimator for same-work timing).  Returns
    ``(overhead_fraction, off_seconds, on_seconds, counters)``.
    """
    from repro.obs import CampaignTelemetry

    config = HDTestConfig(iter_times=iter_times)
    off_times, on_times = [], []
    counters = {}
    executor = BatchedExecutor(batch_size=batch_size)
    for _ in range(repeats):
        start = time.perf_counter()
        compare_strategies(
            model, images, STRATEGIES, config=config, rng=SEED,
            executor=executor,
        )
        off_times.append(time.perf_counter() - start)
        obs = CampaignTelemetry()
        start = time.perf_counter()
        compare_strategies(
            model, images, STRATEGIES, config=config, rng=SEED,
            executor=executor, telemetry=obs,
        )
        on_times.append(time.perf_counter() - start)
        counters = dict(obs.counters)
    off, on = min(off_times), min(on_times)
    return (on - off) / off, off, on, counters


def run_encode_rebaseline(model, images, *, iter_times=ITER_TIMES,
                          batch_size=64, repeats=ENCODE_REBASELINE_REPEATS):
    """Telemetry-measured encode throughput, fused batched vs pre-fusion serial.

    Runs the four-strategy campaign under each arm with phase telemetry
    and returns ``{arm: (encode_seconds, encodes, encodes_per_second)}``
    (min-of-*repeats* encode seconds, with that run's encode count).
    The instrumented runs are separate from the timed table so the
    headline inputs/sec stays uninstrumented.
    """
    from repro.obs import CampaignTelemetry

    config = HDTestConfig(iter_times=iter_times)
    stats = {}
    arms = (
        ("batched", BatchedExecutor(batch_size=batch_size)),
        ("serial-prefusion", _PreFusionSerialExecutor()),
    )
    for _ in range(repeats):
        for name, executor in arms:
            obs = CampaignTelemetry()
            compare_strategies(
                model, images, STRATEGIES, config=config, rng=SEED,
                executor=executor, telemetry=obs,
            )
            seconds = obs.phase_seconds["encode"]
            if name not in stats or seconds < stats[name][0]:
                encodes = int(obs.counters.get("encodes", 0))
                stats[name] = (seconds, encodes, encodes / seconds)
    return stats


def _report_rebaseline(stats):
    batched = stats["batched"]
    prefusion = stats["serial-prefusion"]
    return (
        "[fuzzing-throughput] encode throughput: batched "
        f"{batched[2]:.0f} encodes/s ({batched[0]:.2f}s phase) vs "
        f"pre-fusion serial {prefusion[2]:.0f} encodes/s "
        f"({prefusion[0]:.2f}s phase) -> {batched[2] / prefusion[2]:.2f}x"
    )


def _check_rebaseline_bar(stats, *, bar=MIN_ENCODE_THROUGHPUT_SPEEDUP):
    batched, prefusion = stats["batched"], stats["serial-prefusion"]
    assert batched[2] >= bar * prefusion[2], (
        f"batched encode throughput {batched[2]:.0f} encodes/s is below "
        f"{bar}x the pre-fusion delta-serial baseline "
        f"({prefusion[2]:.0f} encodes/s)"
    )


def _record_rebaseline(stats) -> None:
    from conftest import write_bench_record

    batched, prefusion = stats["batched"], stats["serial-prefusion"]
    write_bench_record(
        "bench_fuzzing_throughput",
        metrics={
            "encode_phase_seconds": batched[0],
            "encodes_per_second": batched[2],
            "prefusion_encodes_per_second": prefusion[2],
        },
        config={"rebaseline_repeats": ENCODE_REBASELINE_REPEATS},
    )


def _record_rows(rows, *, n_images, iter_times) -> None:
    from conftest import write_bench_record

    write_bench_record(
        "bench_fuzzing_throughput",
        metrics={f"{name}_inputs_per_s": ips for name, ips, _ in rows},
        config={"n_images": n_images, "iter_times": iter_times},
    )


def test_engine_speedups(benchmark, paper_model, fuzz_images):
    """Batched AND delta-serial must clear 3× the scratch baseline."""
    from conftest import run_once

    images = fuzz_images[:N_IMAGES]
    rows = run_once(benchmark, lambda: run_throughput_comparison(paper_model, images))
    print("\n" + _report(rows))
    _record_rows(rows, n_images=len(images), iter_times=ITER_TIMES)
    by_name = {name: ips for name, ips, _ in rows}
    baseline = by_name["serial-scratch"]
    for engine in ("batched", "serial"):
        assert by_name[engine] >= MIN_BATCHED_SPEEDUP * baseline, (
            f"{engine} executor {by_name[engine]:.2f} in/s is below "
            f"{MIN_BATCHED_SPEEDUP}x the scratch baseline ({baseline:.2f} in/s)"
        )


def test_encode_throughput_rebaseline(paper_model, fuzz_images):
    """Batched encode throughput ≥ 1.25× the pre-fusion delta-serial arm."""
    images = fuzz_images[:N_IMAGES]
    stats = run_encode_rebaseline(paper_model, images)
    print("\n" + _report_rebaseline(stats))
    _record_rebaseline(stats)
    _check_rebaseline_bar(stats)


def test_telemetry_overhead_within_budget(paper_model, fuzz_images):
    """Instrumentation must cost ≤ 5% on the paper-scale batched campaign."""
    from conftest import write_bench_record

    images = fuzz_images[:N_IMAGES]
    overhead, off, on, counters = run_telemetry_overhead(paper_model, images)
    print(f"\n[fuzzing-throughput] telemetry overhead: off {off:.2f}s, "
          f"on {on:.2f}s -> {100 * overhead:+.1f}% "
          f"(bar: {100 * MAX_TELEMETRY_OVERHEAD:.0f}%)")
    write_bench_record(
        "bench_fuzzing_throughput",
        metrics={
            "telemetry_overhead_frac": overhead,
            "telemetry_encodes": counters.get("encodes", 0),
            "telemetry_encode_requests": counters.get("encode_requests", 0),
            "telemetry_retired": counters.get("retired", 0),
        },
        config={"telemetry_repeats": TELEMETRY_TIMING_REPEATS},
    )
    assert overhead <= MAX_TELEMETRY_OVERHEAD, (
        f"telemetry costs {100 * overhead:.1f}% on the batched campaign, "
        f"over the {100 * MAX_TELEMETRY_OVERHEAD:.0f}% budget"
    )


def test_batched_outcomes_match_serial_shape(paper_model, fuzz_images):
    """Throughput must not change the campaign's scientific content."""
    images = fuzz_images[:6]
    config = HDTestConfig(iter_times=25)
    serial = compare_strategies(
        paper_model, images, ("gauss",), config=config, rng=3, executor="serial"
    )["gauss"]
    batched = compare_strategies(
        paper_model, images, ("gauss",), config=config, rng=3, executor="batched"
    )["gauss"]
    assert serial.n_inputs == batched.n_inputs
    # Same RNG root, same decision rule: success sets should be close;
    # identical per-input outcomes are covered by tests/fuzz/test_batch.py
    # under the shared RNG discipline.
    assert abs(serial.n_success - batched.n_success) <= 2


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke reading without plugins."""
    import argparse

    from repro.datasets import load_digits
    from repro.hdc import HDCClassifier, PixelEncoder

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny model + short loops (CI smoke)")
    parser.add_argument("--n-images", type=int, default=None)
    args = parser.parse_args(argv)

    dimension = 2048 if args.quick else 10_000
    n_train = 400 if args.quick else 1500
    n_images = args.n_images or (8 if args.quick else N_IMAGES)
    iter_times = 15 if args.quick else ITER_TIMES

    train, test = load_digits(n_train=n_train, n_test=max(n_images, 32), seed=42)
    model = HDCClassifier(PixelEncoder(dimension=dimension, rng=42), 10).fit(
        train.images, train.labels
    )
    images = test.images[:n_images].astype(np.float64)
    rows = run_throughput_comparison(model, images, iter_times=iter_times)
    print(_report(rows))
    _record_rows(rows, n_images=n_images, iter_times=iter_times)
    by_name = {name: ips for name, ips, _ in rows}
    baseline = by_name["serial-scratch"]
    print(f"[fuzzing-throughput] vs scratch baseline: "
          f"batched {by_name['batched'] / baseline:.2f}x, "
          f"delta-serial {by_name['serial'] / baseline:.2f}x "
          f"(bar: {MIN_BATCHED_SPEEDUP}x at paper scale)")
    overhead, off, on, _ = run_telemetry_overhead(
        model, images, iter_times=iter_times,
        repeats=1 if args.quick else TELEMETRY_TIMING_REPEATS,
    )
    print(f"[fuzzing-throughput] telemetry overhead: off {off:.2f}s, "
          f"on {on:.2f}s -> {100 * overhead:+.1f}% "
          f"(assertion bar at paper scale: "
          f"{100 * MAX_TELEMETRY_OVERHEAD:.0f}%)")
    stats = run_encode_rebaseline(
        model, images, iter_times=iter_times,
        repeats=1 if args.quick else ENCODE_REBASELINE_REPEATS,
    )
    print(_report_rebaseline(stats) + (
        f" (assertion bar at paper scale: {MIN_ENCODE_THROUGHPUT_SPEEDUP}x)"
    ))
    _record_rebaseline(stats)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
