"""Baseline: single-shot random perturbation vs HDTest's guided loop.

Sec. I motivates fuzzing over blind input generation: unguided random
inputs can't cover meaningful corner cases.  This bench gives the
blind attacker the same L2 budget and a comparable per-image query
count and shows the gap that the mutation + fitness + survival loop
creates.
"""

from __future__ import annotations

from conftest import run_once

from repro.baselines import random_attack
from repro.fuzz import HDTest, HDTestConfig, ImageConstraint

N_IMAGES = 12
BUDGET_L2 = 0.5


def test_random_attack_baseline(benchmark, paper_model, fuzz_images):
    def attack():
        return random_attack(
            paper_model,
            fuzz_images[:N_IMAGES],
            max_l2=BUDGET_L2,
            attempts_per_input=30,
            rng=61,
        )

    result = run_once(benchmark, attack)
    print(f"\n[baseline] random attack (L2≤{BUDGET_L2}): "
          f"success {result.n_success}/{result.n_inputs}")
    assert result.n_inputs == N_IMAGES


def test_hdtest_beats_random_attack(benchmark, paper_model, fuzz_images):
    def both():
        baseline = random_attack(
            paper_model,
            fuzz_images[:N_IMAGES],
            max_l2=BUDGET_L2,
            attempts_per_input=30,
            rng=61,
        )
        fuzzer = HDTest(
            paper_model,
            "rand",
            constraint=ImageConstraint(max_l2=BUDGET_L2),
            config=HDTestConfig(iter_times=60),
            rng=61,
        )
        guided = fuzzer.fuzz(fuzz_images[:N_IMAGES])
        return baseline, guided

    baseline, guided = run_once(benchmark, both)
    print(f"\n[baseline vs HDTest] random {baseline.success_rate:.2f} vs "
          f"HDTest {guided.success_rate:.2f} success rate at L2≤{BUDGET_L2}")
    # The fuzzing loop must add real value over blind sampling.
    assert guided.success_rate > baseline.success_rate
