"""Member-sharded execution vs input sharding on member-bound campaigns.

The campaign shape that motivates :class:`~repro.fuzz.executor.
MemberShardedExecutor`: a K ≥ 5 ensemble fuzzed over *few* inputs.
Input sharding cannot fill two workers (``n_inputs //
MIN_INPUTS_PER_WORKER < 2``) and replicates all K members into every
process it does start; member sharding gives each of the K members a
whole worker and ships it only its own shard — the full member model
for independent ensembles, just the associative memory for
shared-codebook ones.

Three properties are asserted on every run (they are deterministic):

* **Outcome contract** — member-sharded campaigns (both transports)
  are bit-identical to the batched and process schedules.
* **Retained memory** — the pickled shard a member worker holds is
  ~1/K of the broadcast-everything payload an input-shard worker gets.
* **Zero-copy broadcast** — steady-state per-iteration IPC bytes over
  shared memory are ≥ 5× smaller than the pickled-array transport.

The ≥ 1.5× wall-clock speed-up over input sharding needs real
parallelism, so it is asserted only when the machine has ≥ 2 cores
(single-core hosts log the reading and skip the bar).

Run under pytest (paper scale)::

    pytest benchmarks/bench_member_sharding.py --benchmark-only -s

or standalone for a quick smoke reading (used by CI)::

    python benchmarks/bench_member_sharding.py --quick
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np

from repro.datasets import load_digits
from repro.fuzz import BatchedExecutor, HDTestConfig, ProcessExecutor
from repro.fuzz.executor import (
    WORKER_COUNT_ENV,
    MemberShardedExecutor,
    default_schedule_policy,
)
from repro.fuzz.oracle import CrossModelOracle
from repro.fuzz.targets import ModelEnsembleTarget, SharedCodebookEnsembleTarget
from repro.hdc import HDCClassifier, PixelEncoder
from repro.obs import CampaignTelemetry

PAPER_DIMENSION = 10_000
SEED = 42
K_MEMBERS = 5
N_TRAIN = 300
FUZZ_INPUTS = 6  # member-bound on purpose: < 2 input shards
FUZZ_ITERS = 10

#: The acceptance bars (see ISSUE/ROADMAP): wall-clock vs input
#: sharding (multi-core only) and steady-state IPC bytes shm vs pickle.
SPEEDUP_BAR = 1.5
IPC_RATIO_BAR = 5.0


def _outcome_key(result):
    return [(o.success, o.iterations, o.reference_label) for o in result.outcomes]


def build_targets(dimension, n_train, *, k=K_MEMBERS, seed=SEED):
    """An independent-codebook and a shared-codebook K-ensemble pair."""
    train, test = load_digits(n_train=n_train, n_test=64, seed=seed)
    base = HDCClassifier(PixelEncoder(dimension=dimension, rng=seed), 10)
    base.fit(train.images, train.labels)
    independent = ModelEnsembleTarget.trained_like(
        base, k, train.images, train.labels, rng=seed + 1
    )
    shared = SharedCodebookEnsembleTarget.trained_shared(
        base, k, train.images, train.labels, rng=seed + 2
    )
    return independent, shared, test.images.astype(np.float64)


def _shard_bytes(target) -> dict:
    """Pickled footprint: whole target vs the largest single member shard."""
    total = len(pickle.dumps(target))
    shards = [len(pickle.dumps(shard)) for shard in target.member_shards()]
    return {"target_bytes": total, "max_shard_bytes": max(shards)}


def _steady_state_broadcast_bytes(target, inputs, cfg, oracle, transport) -> int:
    """Per-iteration IPC bytes once the worker group is warm.

    The first run pays the one-off member broadcast; the second reuses
    the group, so its ``broadcast_bytes`` counter is pure per-iteration
    traffic — the number the transport choice actually moves.
    """
    executor = MemberShardedExecutor(transport=transport)
    try:
        executor.run(target, "gauss", inputs, config=cfg, oracle=oracle, rng=SEED)
        obs = CampaignTelemetry()
        executor.run(
            target, "gauss", inputs, config=cfg, oracle=oracle, rng=SEED,
            telemetry=obs,
        )
    finally:
        executor.close()
    return int(obs.snapshot()["counters"].get("broadcast_bytes", 0))


def run_member_sharding(dimension, n_train, *, fuzz_iters=FUZZ_ITERS,
                        n_inputs=FUZZ_INPUTS, seed=SEED):
    """Time the same member-bound campaign across schedules → result dict."""
    independent, shared, images = build_targets(dimension, n_train, seed=seed)
    cfg = HDTestConfig(iter_times=fuzz_iters)
    inputs = list(images[:n_inputs])
    oracle = CrossModelOracle()

    timings: dict[str, float] = {}
    keys: dict[str, list] = {}

    start = time.perf_counter()
    batched = BatchedExecutor().run(
        independent, "gauss", inputs, config=cfg, oracle=oracle, rng=seed
    )
    timings["batched"] = time.perf_counter() - start
    keys["batched"] = _outcome_key(batched)

    # Input sharding at its policy size — on a member-bound campaign the
    # policy can grant at most one worker, which is exactly the problem.
    with ProcessExecutor() as pool:
        start = time.perf_counter()
        result = pool.run(
            independent, "gauss", inputs, config=cfg, oracle=oracle, rng=seed
        )
        timings["process_policy"] = time.perf_counter() - start
        keys["process_policy"] = _outcome_key(result)

    member_telemetry = CampaignTelemetry()
    with MemberShardedExecutor() as sharded:
        start = time.perf_counter()
        result = sharded.run(
            independent, "gauss", inputs, config=cfg, oracle=oracle, rng=seed,
            telemetry=member_telemetry,
        )
        timings["member_sharded"] = time.perf_counter() - start
        keys["member_sharded"] = _outcome_key(result)

    with MemberShardedExecutor(transport="pickle") as sharded:
        start = time.perf_counter()
        result = sharded.run(
            independent, "gauss", inputs, config=cfg, oracle=oracle, rng=seed
        )
        timings["member_sharded_pickle"] = time.perf_counter() - start
        keys["member_sharded_pickle"] = _outcome_key(result)

    # Steady-state per-iteration IPC, shared-codebook mode: the parent
    # broadcasts encoded hypervector blocks (D floats per child), which
    # is where the shm handles pay off hardest.
    ipc = {
        transport: _steady_state_broadcast_bytes(
            shared, inputs, cfg, oracle, transport
        )
        for transport in ("shm", "pickle")
    }

    return {
        "dimension": dimension,
        "k": K_MEMBERS,
        "n_inputs": len(inputs),
        "cores": os.cpu_count() or 1,
        "timings_s": timings,
        "outcomes_agree": all(k == keys["batched"] for k in keys.values()),
        "member_phase_seconds": member_telemetry.snapshot()["phase_seconds"],
        "independent_footprint": _shard_bytes(independent),
        "shared_footprint": _shard_bytes(shared),
        "steady_ipc_bytes": ipc,
        "speedup_vs_process": (
            timings["process_policy"] / timings["member_sharded"]
        ),
    }


def report(result) -> str:
    lines = [
        f"[member-sharding] D={result['dimension']}, K={result['k']}, "
        f"{result['n_inputs']} inputs on {result['cores']} core(s):",
        f"{'schedule':24s} {'seconds':>10s}",
    ]
    for name, seconds in result["timings_s"].items():
        lines.append(f"{name:24s} {seconds:10.2f}")
    lines.append(
        f"{'speedup vs process':24s} {result['speedup_vs_process']:10.2f}x"
        + ("" if result["cores"] >= 2 else "  (1 core: bar not asserted)")
    )
    phases = "  ".join(
        f"{name} {seconds:.2f}s"
        for name, seconds in result["member_phase_seconds"].items()
        if seconds
    )
    lines.append(f"{'member phases':24s} {phases or '-'}")
    for label in ("independent", "shared"):
        footprint = result[f"{label}_footprint"]
        lines.append(
            f"{label + ' shard bytes':24s} "
            f"{footprint['max_shard_bytes']:,} of "
            f"{footprint['target_bytes']:,} total "
            f"(1/{footprint['target_bytes'] / footprint['max_shard_bytes']:.1f})"
        )
    ipc = result["steady_ipc_bytes"]
    lines.append(
        f"{'steady IPC bytes':24s} shm {ipc['shm']:,} vs pickle "
        f"{ipc['pickle']:,} ({ipc['pickle'] / max(ipc['shm'], 1):.0f}x)"
    )
    lines.append(f"{'outcomes agree':24s} {str(result['outcomes_agree']):>10s}")
    return "\n".join(lines)


def assert_acceptance(result) -> None:
    assert result["outcomes_agree"], (
        "member-sharded outcomes diverged from the batched schedule — "
        "the parent-side oracle/fitness/survival contract is broken"
    )
    # A member worker retains ~1/K of the broadcast-everything payload.
    independent = result["independent_footprint"]
    assert independent["max_shard_bytes"] * result["k"] <= (
        1.5 * independent["target_bytes"]
    )
    # Shared-codebook shards are AM-only: far below even the 1/K bar.
    shared = result["shared_footprint"]
    assert shared["max_shard_bytes"] * result["k"] <= shared["target_bytes"]
    # Zero-copy broadcast: handles, not arrays, on the wire.
    ipc = result["steady_ipc_bytes"]
    assert ipc["pickle"] >= IPC_RATIO_BAR * ipc["shm"], (
        f"shm transport saved only {ipc['pickle'] / max(ipc['shm'], 1):.1f}x "
        f"over pickle (bar: {IPC_RATIO_BAR}x)"
    )
    # The schedule policy routes this exact shape to member sharding
    # (pinned worker count *and* core count: the policy must not depend
    # on this host — a real one-core host would be routed to `batched`
    # unconditionally, which is the policy's own 1-core guard, not what
    # this bar measures).
    os.environ[WORKER_COUNT_ENV] = "8"
    real_cpu_count = os.cpu_count
    os.cpu_count = lambda: 8
    try:
        assert default_schedule_policy(
            result["n_inputs"], n_members=result["k"]
        ) == "member-sharded"
        assert default_schedule_policy(64 * result["k"]) == "process"
    finally:
        os.cpu_count = real_cpu_count
        del os.environ[WORKER_COUNT_ENV]
    # Wall clock needs real cores; single-core hosts report, multi-core
    # hosts (CI) enforce the bar.
    if result["cores"] >= 2:
        assert result["speedup_vs_process"] >= SPEEDUP_BAR, (
            f"member sharding {result['speedup_vs_process']:.2f}x vs input "
            f"sharding on a member-bound campaign (bar: {SPEEDUP_BAR}x)"
        )


def _record(result) -> None:
    from conftest import write_bench_record

    write_bench_record(
        "bench_member_sharding",
        metrics={
            **{f"{k}_s": round(v, 4) for k, v in result["timings_s"].items()},
            **{
                f"member_phase_{k}_s": round(v, 4)
                for k, v in result["member_phase_seconds"].items()
            },
            "speedup_vs_process": round(result["speedup_vs_process"], 3),
            "outcomes_agree": result["outcomes_agree"],
            "independent_max_shard_bytes":
                result["independent_footprint"]["max_shard_bytes"],
            "independent_target_bytes":
                result["independent_footprint"]["target_bytes"],
            "shared_max_shard_bytes":
                result["shared_footprint"]["max_shard_bytes"],
            "shared_target_bytes":
                result["shared_footprint"]["target_bytes"],
            "steady_ipc_shm_bytes": result["steady_ipc_bytes"]["shm"],
            "steady_ipc_pickle_bytes": result["steady_ipc_bytes"]["pickle"],
        },
        config={
            "dimension": result["dimension"],
            "k": result["k"],
            "n_inputs": result["n_inputs"],
            "cores": result["cores"],
            "speedup_bar": SPEEDUP_BAR,
            "ipc_ratio_bar": IPC_RATIO_BAR,
        },
    )


def test_member_sharding(benchmark):
    """Member-bound campaign across schedules; contract + bars asserted."""
    from conftest import run_once

    result = run_once(
        benchmark, lambda: run_member_sharding(PAPER_DIMENSION, N_TRAIN)
    )
    print("\n" + report(result))
    _record(result)
    assert_acceptance(result)


def test_schedule_policy_quick_properties():
    """Cheap guard (runs without --benchmark-only): routing shape."""
    os.environ[WORKER_COUNT_ENV] = "8"
    try:
        assert default_schedule_policy(6, n_members=5) == "member-sharded"
        assert default_schedule_policy(640) == "process"
        assert default_schedule_policy(6) == "batched"
    finally:
        del os.environ[WORKER_COUNT_ENV]


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke reading without plugins."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller model + short loops (CI smoke)")
    args = parser.parse_args(argv)

    dimension = 1024 if args.quick else PAPER_DIMENSION
    n_train = 120 if args.quick else N_TRAIN
    result = run_member_sharding(
        dimension, n_train,
        fuzz_iters=4 if args.quick else FUZZ_ITERS,
    )
    print(report(result))
    _record(result)
    assert_acceptance(result)
    print("[member-sharding] outcome contract + memory + IPC bars OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
