"""Multi-core scaling of shared-codebook fuzzing across ProcessExecutor.

Measures how one campaign — a K-member shared-codebook ensemble over a
rematerialized codebook — scales across
:class:`~repro.fuzz.executor.ProcessExecutor` worker counts, against the
single-process :class:`~repro.fuzz.executor.BatchedExecutor` baseline,
and records the broadcast cost each worker pays (the pickled target: a
rematerialized model ships a 64-bit seed where a materialized one ships
the ``(rows, D)`` codebook arrays).

The numbers motivated the defaults in
:func:`repro.fuzz.executor.default_pool_policy`: pools sized past
``n_inputs // MIN_INPUTS_PER_WORKER`` spend more wall-clock on process
start-up and broadcast than they recover, so small campaigns get small
pools.  Timing is reported, not asserted (CI core counts vary);
what *is* asserted is the executors' outcome contract — per-input
outcomes identical across every worker count and equal to the batched
baseline — plus the policy's sizing properties and the broadcast-bytes
ordering.

Run under pytest (paper scale)::

    pytest benchmarks/bench_executor_scaling.py --benchmark-only -s

or standalone for a quick smoke reading (used by CI)::

    python benchmarks/bench_executor_scaling.py --quick
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np

from repro.fuzz import BatchedExecutor, HDTestConfig, ProcessExecutor
from repro.fuzz.executor import (
    DEFAULT_BATCH_SIZE,
    MIN_INPUTS_PER_WORKER,
    default_pool_policy,
)
from repro.fuzz.oracle import CrossModelOracle
from repro.obs import CampaignTelemetry

PAPER_DIMENSION = 10_000
SEED = 42
K_MEMBERS = 3
N_TRAIN = 300
FUZZ_INPUTS = 16
FUZZ_ITERS = 10


def _worker_counts() -> list[int]:
    cores = os.cpu_count() or 1
    counts = [1]
    if cores >= 2:
        counts.append(2)
    if cores >= 4:
        counts.append(min(4, cores - 1))
    return counts


def _outcome_key(result):
    return [(o.success, o.iterations, o.reference_label) for o in result.outcomes]


def run_scaling(dimension, n_train, *, fuzz_iters=FUZZ_ITERS,
                n_inputs=FUZZ_INPUTS, seed=SEED):
    """Time the same campaign across executors; returns a result dict."""
    from bench_shared_codebook import build_shared_pair

    remat, materialized, images = build_shared_pair(
        dimension, n_train, k=K_MEMBERS, seed=seed
    )
    cfg = HDTestConfig(iter_times=fuzz_iters)
    inputs = list(images[:n_inputs])
    oracle = CrossModelOracle()

    timings: dict[str, float] = {}
    keys: dict[str, list] = {}

    start = time.perf_counter()
    batched = BatchedExecutor().run(
        remat, "gauss", inputs, config=cfg, oracle=oracle, rng=seed,
        telemetry=CampaignTelemetry(),
    )
    timings["batched"] = time.perf_counter() - start
    keys["batched"] = _outcome_key(batched)

    for workers in _worker_counts():
        with ProcessExecutor(n_workers=workers) as pool:
            start = time.perf_counter()
            result = pool.run(
                remat, "gauss", inputs, config=cfg, oracle=oracle, rng=seed
            )
            timings[f"process_w{workers}"] = time.perf_counter() - start
            keys[f"process_w{workers}"] = _outcome_key(result)

    # Policy-sized pool: whatever default_pool_policy grants this campaign.
    with ProcessExecutor() as pool:
        start = time.perf_counter()
        result = pool.run(
            remat, "gauss", inputs, config=cfg, oracle=oracle, rng=seed,
            telemetry=CampaignTelemetry(),
        )
        timings["process_policy"] = time.perf_counter() - start
        keys["process_policy"] = _outcome_key(result)
    policy_workers, policy_batch = default_pool_policy(len(inputs))

    # The crossover, re-derived from phase telemetry rather than bare
    # wall clocks: the process pool wins only once the engine-phase work
    # (worker busy_seconds, parallelisable) dominates the schedule
    # overhead (parent elapsed − busy/workers: broadcast, pickling, IPC).
    batched_phases = batched.telemetry["phase_seconds"]
    process_phases = result.telemetry["phase_seconds"]
    busy = result.telemetry["busy_seconds"]
    overhead = max(timings["process_policy"] - busy / max(policy_workers, 1), 0.0)

    return {
        "dimension": dimension,
        "k": K_MEMBERS,
        "n_inputs": len(inputs),
        "timings_s": timings,
        "batched_phase_seconds": batched_phases,
        "process_phase_seconds": process_phases,
        "process_busy_s": busy,
        "process_overhead_s": overhead,
        "outcomes_agree": all(k == keys["batched"] for k in keys.values()),
        "policy_workers": policy_workers,
        "policy_batch": policy_batch,
        "remat_broadcast_bytes": len(pickle.dumps(remat)),
        "materialized_broadcast_bytes": len(pickle.dumps(materialized)),
    }


def report(result) -> str:
    lines = [
        f"[executor-scaling] D={result['dimension']}, K={result['k']}, "
        f"{result['n_inputs']} inputs "
        f"(policy: {result['policy_workers']} workers, "
        f"batch {result['policy_batch']}):",
        f"{'schedule':18s} {'seconds':>10s} {'inputs/sec':>12s}",
    ]
    for name, seconds in result["timings_s"].items():
        lines.append(
            f"{name:18s} {seconds:10.2f} {result['n_inputs'] / seconds:12.2f}"
        )
    for label, phases in (
        ("batched phases", result["batched_phase_seconds"]),
        ("process phases", result["process_phase_seconds"]),
    ):
        split = "  ".join(
            f"{name} {seconds:.2f}s" for name, seconds in phases.items() if seconds
        )
        lines.append(f"{label:18s} {split or '-'}")
    lines.append(
        f"{'process crossover':18s} busy {result['process_busy_s']:.2f}s "
        f"across {result['policy_workers']} workers + "
        f"~{result['process_overhead_s']:.2f}s schedule overhead "
        f"= {result['timings_s']['process_policy']:.2f}s wall"
    )
    lines.append(
        f"{'broadcast bytes':18s} "
        f"remat {result['remat_broadcast_bytes']:,} vs materialized "
        f"{result['materialized_broadcast_bytes']:,}"
    )
    lines.append(f"{'outcomes agree':18s} {str(result['outcomes_agree']):>10s}")
    return "\n".join(lines)


def assert_acceptance(result) -> None:
    assert result["outcomes_agree"], (
        "per-input outcomes changed with the worker count — the executors' "
        "RNG discipline is broken"
    )
    assert result["remat_broadcast_bytes"] < result["materialized_broadcast_bytes"]
    # The policy's shape, independent of this machine's core count.
    workers, batch = default_pool_policy(MIN_INPUTS_PER_WORKER - 1)
    assert workers == 1 and batch == MIN_INPUTS_PER_WORKER - 1
    _, big_batch = default_pool_policy(100_000)
    assert big_batch == DEFAULT_BATCH_SIZE


def _record(result) -> None:
    from conftest import write_bench_record

    write_bench_record(
        "bench_executor_scaling",
        metrics={
            **{f"{k}_s": v for k, v in result["timings_s"].items()},
            **{
                f"batched_phase_{k}_s": round(v, 4)
                for k, v in result["batched_phase_seconds"].items()
            },
            **{
                f"process_phase_{k}_s": round(v, 4)
                for k, v in result["process_phase_seconds"].items()
            },
            "process_busy_s": result["process_busy_s"],
            "process_overhead_s": result["process_overhead_s"],
            "outcomes_agree": result["outcomes_agree"],
            "remat_broadcast_bytes": result["remat_broadcast_bytes"],
            "materialized_broadcast_bytes": result["materialized_broadcast_bytes"],
        },
        config={
            "dimension": result["dimension"],
            "k": result["k"],
            "n_inputs": result["n_inputs"],
            "policy_workers": result["policy_workers"],
            "policy_batch": result["policy_batch"],
        },
    )


def test_executor_scaling(benchmark):
    """Worker-count sweep at paper scale; outcome contract asserted."""
    from conftest import run_once

    result = run_once(benchmark, lambda: run_scaling(PAPER_DIMENSION, N_TRAIN))
    print("\n" + report(result))
    _record(result)
    assert_acceptance(result)


def test_policy_quick_properties():
    """Cheap guard (runs without --benchmark-only): policy sizing laws."""
    workers, batch = default_pool_policy(2 * MIN_INPUTS_PER_WORKER)
    assert workers <= 2
    assert batch <= DEFAULT_BATCH_SIZE
    explicit = default_pool_policy(5, n_workers=7, batch_size=3)
    assert explicit == (7, 3)


def _smoke_main(argv=None):  # pragma: no cover - exercised by CI, not pytest
    """Standalone entry point: small-scale smoke reading without plugins."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller model + short loops (CI smoke)")
    args = parser.parse_args(argv)

    dimension = 2048 if args.quick else PAPER_DIMENSION
    n_train = 120 if args.quick else N_TRAIN
    result = run_scaling(
        dimension, n_train,
        fuzz_iters=5 if args.quick else FUZZ_ITERS,
        n_inputs=8 if args.quick else FUZZ_INPUTS,
    )
    print(report(result))
    _record(result)
    assert_acceptance(result)
    print("[executor-scaling] outcome contract + policy shape OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke_main())
