"""Fig. 1: an adversarial image with a handful of mutated pixels.

Generates one adversarial example, renders the original / mutated
pixels / adversarial triptych, and persists the three panels as ``.pgm``
files plus an ``.npz`` bundle under ``benchmarks/artifacts/``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from conftest import run_once

from repro.analysis import adversarial_triptych, diff_mask, save_examples_npz, save_pgm
from repro.fuzz import HDTest, HDTestConfig

ARTIFACTS = Path(__file__).parent / "artifacts"


def test_fig1_adversarial_example(benchmark, paper_model, fuzz_images):
    fuzzer = HDTest(paper_model, "rand", config=HDTestConfig(iter_times=60), rng=1)

    def find_one():
        for image in fuzz_images:
            outcome = fuzzer.fuzz_one(image)
            if outcome.success:
                return outcome.example
        raise AssertionError("no adversarial found in the pool")

    example = run_once(benchmark, find_one)

    print("\n[Fig. 1] " + f"{example.reference_label} → {example.adversarial_label} "
          f"in {example.iterations} iterations, "
          f"{int(example.metrics['l0'])} pixels touched")
    print(adversarial_triptych(example))

    # The differential property Fig. 1 illustrates.
    assert example.adversarial_label != example.reference_label
    assert paper_model.predict_one(example.adversarial) == example.adversarial_label
    # 'rand' mutates a small set of pixels (the paper's "(b)" panel):
    # well under half the image, vs gauss's near-total footprint.
    assert example.metrics["l0"] < 350

    ARTIFACTS.mkdir(exist_ok=True)
    save_pgm(ARTIFACTS / "fig1_original.pgm", example.original)
    save_pgm(ARTIFACTS / "fig1_mutated_pixels.pgm",
             diff_mask(example.original, example.adversarial))
    save_pgm(ARTIFACTS / "fig1_adversarial.pgm", example.adversarial)
    save_examples_npz(ARTIFACTS / "fig1_example.npz", [example])
