"""Ablation: distance-guided vs coverage-augmented fitness.

HDTest's fitness is pure reference distance (Sec. IV); TensorFuzz (the
paper's ref. [26]) guides by coverage novelty instead.
:class:`~repro.fuzz.coverage.CoverageGuidedFitness` blends both.  This
bench compares iterations and success under the long-search ``rand``
strategy, and reports how much of HV space the campaign actually
explores.
"""

from __future__ import annotations

import pytest

from conftest import run_once

from repro.fuzz import HDTest, HDTestConfig
from repro.fuzz.coverage import CoverageGuidedFitness, CoverageMap

N_IMAGES = 12


@pytest.fixture(scope="module")
def coverage_results(paper_model, fuzz_images):
    config = HDTestConfig(iter_times=60)
    distance = HDTest(paper_model, "rand", config=config, rng=67).fuzz(
        fuzz_images[:N_IMAGES]
    )
    cov_map = CoverageMap(paper_model.dimension, n_bits=20, rng=67)
    coverage = HDTest(
        paper_model,
        "rand",
        config=config,
        fitness=CoverageGuidedFitness(cov_map, novelty_bonus=0.5),
        rng=67,
    ).fuzz(fuzz_images[:N_IMAGES])
    return {"distance": distance, "coverage": coverage, "map": cov_map}


def test_distance_guided(benchmark, coverage_results):
    result = run_once(benchmark, lambda: coverage_results["distance"])
    print(f"\n[fitness=distance] iters={result.avg_iterations:.1f} "
          f"success={result.success_rate:.2f}")
    assert result.success_rate > 0.5


def test_coverage_guided(benchmark, coverage_results):
    result = run_once(benchmark, lambda: coverage_results["coverage"])
    cov_map = coverage_results["map"]
    print(f"\n[fitness=coverage] iters={result.avg_iterations:.1f} "
          f"success={result.success_rate:.2f}; "
          f"{cov_map.n_cells_visited} HV-space cells visited")
    assert result.success_rate > 0.5
    # The campaign must genuinely explore distinct regions of HV space.
    assert cov_map.n_cells_visited > N_IMAGES


def test_coverage_does_not_collapse_search(benchmark, coverage_results):
    pair = run_once(benchmark, lambda: coverage_results)
    distance, coverage = pair["distance"], pair["coverage"]
    print(f"\n[coverage ablation] distance {distance.avg_iterations:.1f} vs "
          f"coverage {coverage.avg_iterations:.1f} iterations")
    # Novelty pressure may help or cost a little, but must stay in the
    # same regime as the paper's fitness.
    assert coverage.avg_iterations < 3.0 * max(distance.avg_iterations, 1.0)
