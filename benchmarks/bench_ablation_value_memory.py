"""Ablation: random vs ordinal (level) value memory.

The paper *randomly generates* its value memory (Sec. III-A), which
makes adjacent grey levels orthogonal — the property HDTest's ``rand``
strategy exploits with ±few-grey-level nudges.  Swapping in the
ordinal :class:`~repro.hdc.item_memory.LevelMemory` (nearby levels get
similar HVs) is the natural hardening, and this bench quantifies it:
the level-encoded model needs substantially more ``rand`` iterations
per adversarial at comparable accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import SEED, run_once

from repro.fuzz import HDTest, HDTestConfig
from repro.hdc import HDCClassifier, ItemMemory, LevelMemory, PixelEncoder
from repro.hdc.spaces import BipolarSpace

DIMENSION = 4096
N_TRAIN = 800
N_IMAGES = 10


def _build(digit_data, value_memory_cls):
    train, test = digit_data
    space = BipolarSpace(DIMENSION)
    value_memory = value_memory_cls(256, space, rng=SEED + 1)
    encoder = PixelEncoder(
        dimension=DIMENSION, value_memory=value_memory, rng=SEED
    )
    model = HDCClassifier(encoder, n_classes=10).fit(
        train.images[:N_TRAIN], train.labels[:N_TRAIN]
    )
    accuracy = model.score(test.images, test.labels)
    fuzzer = HDTest(model, "rand", config=HDTestConfig(iter_times=60), rng=47)
    result = fuzzer.fuzz(test.images[:N_IMAGES].astype(np.float64))
    return accuracy, result


@pytest.fixture(scope="module")
def both_memories(digit_data):
    return {
        "random": _build(digit_data, ItemMemory),
        "level": _build(digit_data, LevelMemory),
    }


def test_random_value_memory(benchmark, both_memories):
    accuracy, result = run_once(benchmark, lambda: both_memories["random"])
    print(f"\n[ablation value-mem=random] accuracy={accuracy:.3f} "
          f"rand-iters={result.avg_iterations:.1f} "
          f"success={result.success_rate:.2f}")
    assert accuracy > 0.6


def test_level_value_memory(benchmark, both_memories):
    accuracy, result = run_once(benchmark, lambda: both_memories["level"])
    print(f"\n[ablation value-mem=level] accuracy={accuracy:.3f} "
          f"rand-iters={result.avg_iterations:.1f} "
          f"success={result.success_rate:.2f}")
    assert accuracy > 0.6


def test_level_memory_hardens_against_rand(benchmark, both_memories):
    pair = run_once(benchmark, lambda: both_memories)
    _, random_result = pair["random"]
    _, level_result = pair["level"]
    print(f"\n[ablation] rand iterations: random-mem "
          f"{random_result.avg_iterations:.1f} vs level-mem "
          f"{level_result.avg_iterations:.1f}")
    # Ordinal encoding resists small-amplitude pixel nudges.
    assert level_result.avg_iterations > random_result.avg_iterations
