"""Micro-benchmarks: image-encoding throughput (the fuzzer's hot path).

Every fuzzing iteration encodes a batch of mutated seeds, so encoder
throughput bounds HDTest's generation rate end to end.  These benches
time the two algebraically-identical encoding paths (dense gather vs
the sparse-background rewrite, see
:mod:`repro.hdc.encoders.image`) and the similarity query.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import PAPER_DIMENSION, SEED

from repro.hdc import PixelEncoder
from repro.hdc.similarity import cosine_matrix

BATCH = 16


@pytest.fixture(scope="module")
def images(digit_data):
    _, test = digit_data
    return test.images[:BATCH].astype(np.float64)


def test_encode_sparse_path(benchmark, images):
    encoder = PixelEncoder(dimension=PAPER_DIMENSION, rng=SEED, sparse_background=True)
    out = benchmark(lambda: encoder.encode_batch(images))
    assert out.shape == (BATCH, PAPER_DIMENSION)


def test_encode_dense_path(benchmark, images):
    encoder = PixelEncoder(dimension=PAPER_DIMENSION, rng=SEED, sparse_background=False)
    out = benchmark(lambda: encoder.encode_batch(images))
    assert out.shape == (BATCH, PAPER_DIMENSION)


def test_sparse_path_beats_dense(benchmark, digit_data):
    """The sparse rewrite must actually pay for itself on digit data."""
    import time

    from conftest import run_once

    _, test = digit_data
    images = test.images[:32].astype(np.float64)
    sparse = PixelEncoder(dimension=PAPER_DIMENSION, rng=SEED, sparse_background=True)
    dense = PixelEncoder(dimension=PAPER_DIMENSION, rng=SEED, sparse_background=False)

    def compare():
        for enc in (sparse, dense):  # warm-up
            enc.encode_batch(images[:2])
        t0 = time.perf_counter()
        a = sparse.encode_batch(images)
        t1 = time.perf_counter()
        b = dense.encode_batch(images)
        t2 = time.perf_counter()
        np.testing.assert_array_equal(a, b)
        return t1 - t0, t2 - t1

    sparse_time, dense_time = run_once(benchmark, compare)
    print(f"\n[encoding] sparse {sparse_time:.3f}s vs dense {dense_time:.3f}s "
          "for 32 images")
    assert sparse_time < dense_time


def test_similarity_query(benchmark, digit_data):
    _, test = digit_data
    encoder = PixelEncoder(dimension=PAPER_DIMENSION, rng=SEED)
    queries = encoder.encode_batch(test.images[:BATCH].astype(np.float64))
    references = encoder.encode_batch(test.images[BATCH : 2 * BATCH].astype(np.float64))[:10]
    out = benchmark(lambda: cosine_matrix(queries, references))
    assert out.shape == (BATCH, 10)
