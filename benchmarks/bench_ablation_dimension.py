"""Ablation: hypervector dimension D.

The paper runs at D = 10 000 (the HDC literature's default).  This
sweep trains the same model at smaller D and fuzzes it, showing the
robustness/capacity trade: lower D costs accuracy *and* makes the
model easier to fool (fewer gauss iterations per adversarial).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import SEED, run_once

from repro.fuzz import HDTest, HDTestConfig
from repro.hdc import HDCClassifier, PixelEncoder

N_TRAIN = 800
N_IMAGES = 10


@pytest.mark.parametrize("dimension", [2048, 4096, 10000])
def test_dimension_sweep(benchmark, digit_data, dimension):
    train, test = digit_data

    def build_and_fuzz():
        encoder = PixelEncoder(dimension=dimension, rng=SEED)
        model = HDCClassifier(encoder, n_classes=10).fit(
            train.images[:N_TRAIN], train.labels[:N_TRAIN]
        )
        accuracy = model.score(test.images, test.labels)
        fuzzer = HDTest(
            model, "gauss", config=HDTestConfig(iter_times=60), rng=43
        )
        result = fuzzer.fuzz(test.images[:N_IMAGES].astype(np.float64))
        return accuracy, result

    accuracy, result = run_once(benchmark, build_and_fuzz)
    print(f"\n[ablation D={dimension}] accuracy={accuracy:.3f} "
          f"fuzz success={result.success_rate:.2f} "
          f"iters={result.avg_iterations:.2f}")
    assert accuracy > 0.6
    assert result.success_rate > 0.5
