"""Extension: do HDTest adversarials transfer across HDC models?

The defense case study (Sec. V-D) retrains the *same* model.  A
natural follow-up the paper leaves open is transferability: does an
adversarial minted against one HDC model fool an independently-drawn
model (same architecture, different random codebooks)?  Because the
paper's value memory assigns unrelated HVs to adjacent grey levels
*per seed*, small perturbations that exploit one codebook should
largely not transfer — a structural robustness bonus of random
encodings, quantified here.
"""

from __future__ import annotations

import numpy as np

from conftest import PAPER_DIMENSION, run_once

from repro.defense import attack_success_rate
from repro.fuzz import generate_adversarial_set
from repro.hdc import HDCClassifier, PixelEncoder

N_ADVERSARIAL = 60


def test_adversarial_transferability(benchmark, paper_model, digit_data, fuzz_images):
    train, test = digit_data

    def experiment():
        examples, _ = generate_adversarial_set(
            paper_model,
            fuzz_images,
            N_ADVERSARIAL,
            strategy="rand",  # minimal perturbations = hardest transfer test
            true_labels=test.labels,
            rng=97,
        )
        rate_source = attack_success_rate(paper_model, examples)
        # An independent model: same architecture/training, fresh codebooks.
        other = HDCClassifier(
            PixelEncoder(dimension=PAPER_DIMENSION, rng=12345), n_classes=10
        ).fit(train.images, train.labels)
        rate_transfer = attack_success_rate(other, examples)
        return rate_source, rate_transfer

    rate_source, rate_transfer = run_once(benchmark, experiment)
    print(f"\n[transferability] source model {rate_source:.1%} vs "
          f"independent model {rate_transfer:.1%} attack success")
    # Minted adversarials fool their source model…
    assert rate_source > 0.9
    # …but mostly fail against fresh random codebooks.
    assert rate_transfer < rate_source - 0.3
