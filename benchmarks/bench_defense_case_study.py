"""Sec. V-D / Fig. 8: the adversarial-retraining defense.

Paper pipeline: generate 1000 adversarial images, split 50/50, retrain
on the first half with correct labels, attack with the unseen half —
"the rate of successful attack rate drops more than 20%."

This bench runs the identical pipeline (scaled to 240 adversarials to
keep the harness fast; the split/retrain mechanics are unchanged) and
checks both the rate drop and that the clean accuracy survives
retraining.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.defense import run_defense
from repro.fuzz import generate_adversarial_set

N_ADVERSARIAL = 240
PAPER_DROP = 0.20


def test_defense_case_study(benchmark, paper_model, digit_data, fuzz_images):
    _, test = digit_data

    def pipeline():
        examples, _ = generate_adversarial_set(
            paper_model,
            fuzz_images,
            N_ADVERSARIAL,
            strategy="gauss",
            true_labels=test.labels,
            rng=37,
        )
        report, hardened = run_defense(
            paper_model,
            examples,
            retrain_fraction=0.5,
            epochs=5,
            clean_inputs=test.images,
            clean_labels=test.labels,
            rng=37,
        )
        return report

    report = run_once(benchmark, pipeline)
    print(f"\n[Fig. 8] attack success {report.attack_rate_before:.1%} → "
          f"{report.attack_rate_after:.1%} (drop {report.rate_drop:.1%}; "
          f"paper: >{PAPER_DROP:.0%}); clean accuracy "
          f"{report.clean_accuracy_before:.3f} → {report.clean_accuracy_after:.3f}")

    # Adversarials minted against this model almost always fool it.
    assert report.attack_rate_before > 0.9
    # The paper's headline: a substantial drop after retraining.
    assert report.rate_drop > 0.10
    # The defense must not trade away the model itself.
    assert report.clean_accuracy_after > report.clean_accuracy_before - 0.05
