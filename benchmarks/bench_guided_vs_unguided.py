"""Sec. IV: distance-guided fuzzing vs the unguided baseline.

Paper: "using such guided testing can generate adversarial inputs
faster than unguided testing by 12% on average."  Guided = survivors
chosen by ``fitness = 1 − Cosim(AM[y], HDC(seed))``; unguided = random
survivors.  The effect shows where the search is long — the ``rand``
strategy — so that is what this bench measures.
"""

from __future__ import annotations

import pytest

from conftest import run_once

from repro.fuzz import HDTest, HDTestConfig

N_IMAGES = 15
PAPER_SPEEDUP = 0.12


@pytest.fixture(scope="module")
def guided_vs_unguided(paper_model, fuzz_images):
    results = {}
    for guided in (True, False):
        fuzzer = HDTest(
            paper_model,
            "rand",
            config=HDTestConfig(iter_times=60, guided=guided),
            rng=31,
        )
        results[guided] = fuzzer.fuzz(fuzz_images[:N_IMAGES])
    return results


def test_guided_fuzzing(benchmark, guided_vs_unguided):
    result = run_once(benchmark, lambda: guided_vs_unguided[True])
    assert result.guided is True


def test_unguided_baseline(benchmark, guided_vs_unguided):
    result = run_once(benchmark, lambda: guided_vs_unguided[False])
    assert result.guided is False


def test_guidance_speeds_up_fuzzing(benchmark, guided_vs_unguided):
    pair = run_once(benchmark, lambda: guided_vs_unguided)
    guided, unguided = pair[True], pair[False]
    speedup = 1.0 - guided.avg_iterations / unguided.avg_iterations
    print(f"\n[guided vs unguided] iterations {guided.avg_iterations:.1f} vs "
          f"{unguided.avg_iterations:.1f} → {speedup:.0%} fewer "
          f"(paper: ≈{PAPER_SPEEDUP:.0%}); success "
          f"{guided.success_rate:.2f} vs {unguided.success_rate:.2f}")
    # The paper's direction: guided needs fewer iterations.
    assert guided.avg_iterations < unguided.avg_iterations
    # And never fewer successes.
    assert guided.n_success >= unguided.n_success
